"""Parametric topology generators for stress tests and scenario sweeps.

Each generator returns a built :class:`repro.net.topology.Network` with at
least one host pair attached to edge routers, so the scenario runner
(:mod:`repro.scenarios`) can derive tunnels and place traffic on any of
them.  All generators are deterministic for a given ``seed``.

Families:

- :func:`line_topology` — ``h1 - r0 - ... - r{n-1} - h2``, the minimal
  single-path tunnel testbed.
- :func:`ring_topology` — a router cycle; every host pair has exactly two
  disjoint candidate paths (clockwise/counter-clockwise).
- :func:`fat_tree_topology` — a k-ary fat tree (core/aggregation/edge),
  the canonical datacenter multi-path fabric.
- :func:`random_geometric` — routers scattered in the unit square, linked
  within a radius, with distance-proportional propagation delays (a WAN
  where geography matters).
- :func:`random_wan` — random spanning tree plus chords.
"""

from __future__ import annotations


import networkx as nx
import numpy as np

from repro.net.topology import Network

__all__ = [
    "line_topology",
    "ring_topology",
    "fat_tree_topology",
    "random_geometric",
    "random_wan",
]


def line_topology(
    n_routers: int = 3,
    rate_mbps: float = 100.0,
    delay_ms: float = 1.0,
) -> Network:
    """``h1 - r0 - r1 - ... - r{n-1} - h2`` (the minimal tunnel testbed)."""
    if n_routers < 1:
        raise ValueError("need at least one router")
    net = Network()
    net.add_host("h1", ip="10.0.1.2")
    net.add_host("h2", ip="10.0.2.2")
    names = [f"r{i}" for i in range(n_routers)]
    for i, name in enumerate(names):
        net.add_router(name, edge=(i in (0, n_routers - 1)))
    net.add_link("h1", names[0], rate_mbps=1000.0, delay_ms=0.1)
    net.add_link(names[-1], "h2", rate_mbps=1000.0, delay_ms=0.1)
    for a, b in zip(names[:-1], names[1:]):
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
    return net.build()


def ring_topology(
    n_routers: int = 6,
    n_host_pairs: int = 1,
    rate_mbps: float = 100.0,
    delay_ms: float = 1.0,
    host_rate_mbps: float = 1000.0,
) -> Network:
    """Router cycle ``r0 - r1 - ... - r{n-1} - r0``.

    Every router may terminate tunnels (``edge=True``); host pairs sit on
    opposite sides of the ring so the two directions around it are
    genuinely different candidate paths.
    """
    if n_routers < 3:
        raise ValueError("a ring needs at least three routers")
    if n_host_pairs < 1 or 2 * n_host_pairs > n_routers:
        raise ValueError("host pairs must fit on distinct routers")
    net = Network()
    names = [f"r{i}" for i in range(n_routers)]
    for name in names:
        net.add_router(name, edge=True)
    for i in range(n_routers):
        net.add_link(names[i], names[(i + 1) % n_routers],
                     rate_mbps=rate_mbps, delay_ms=delay_ms)
    half = n_routers // 2
    for pair in range(n_host_pairs):
        src_r = names[pair % n_routers]
        dst_r = names[(pair + half) % n_routers]
        net.add_host(f"h{pair}a", ip=f"10.{pair}.1.2")
        net.add_host(f"h{pair}b", ip=f"10.{pair}.2.2")
        net.add_link(f"h{pair}a", src_r, rate_mbps=host_rate_mbps, delay_ms=0.1)
        net.add_link(dst_r, f"h{pair}b", rate_mbps=host_rate_mbps, delay_ms=0.1)
    return net.build()


def fat_tree_topology(
    k: int = 4,
    n_hosts: int = 4,
    rate_mbps: float = 50.0,
    delay_ms: float = 0.5,
    host_rate_mbps: float = 100.0,
) -> Network:
    """k-ary fat tree: ``(k/2)^2`` core, ``k`` pods of ``k/2`` aggregation
    and ``k/2`` edge switches (the standard datacenter Clos fabric).

    ``n_hosts`` hosts are attached round-robin to the edge switches;
    consecutive hosts land in different pods, so any (even, odd) host pair
    crosses the core and sees ``(k/2)^2`` equal-cost paths.
    """
    if k < 2 or k % 2:
        raise ValueError("k must be a positive even number")
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    half = k // 2
    edge_names = []
    net = Network()
    cores = [f"c{i}" for i in range(half * half)]
    for name in cores:
        net.add_router(name)
    for pod in range(k):
        aggs = [f"p{pod}a{i}" for i in range(half)]
        edges = [f"p{pod}e{i}" for i in range(half)]
        for name in aggs:
            net.add_router(name)
        for name in edges:
            net.add_router(name, edge=True)
            edge_names.append(name)
        for a_idx, agg in enumerate(aggs):
            # aggregation switch i of every pod uplinks to core group i
            for c_idx in range(half):
                net.add_link(agg, cores[a_idx * half + c_idx],
                             rate_mbps=rate_mbps, delay_ms=delay_ms)
            for edge in edges:
                net.add_link(agg, edge, rate_mbps=rate_mbps, delay_ms=delay_ms)
    # hosts round-robin over edge switches, interleaving pods so that
    # consecutive hosts are in different pods
    order = sorted(range(len(edge_names)), key=lambda i: (i % half, i // half))
    for h in range(n_hosts):
        edge = edge_names[order[h % len(order)]]
        name = f"h{h}"
        net.add_host(name, ip=f"10.{h // 250}.{h % 250}.2")
        net.add_link(name, edge, rate_mbps=host_rate_mbps, delay_ms=0.05)
    return net.build()


def random_geometric(
    n_routers: int = 10,
    radius: float = 0.45,
    seed: int = 0,
    n_host_pairs: int = 2,
    rate_mbps: float = 100.0,
    delay_per_unit_ms: float = 10.0,
    host_rate_mbps: float = 1000.0,
) -> Network:
    """Random geometric WAN: routers at uniform points in the unit square,
    linked when closer than ``radius``; link delay is proportional to
    Euclidean distance (``delay_per_unit_ms`` per unit).

    Disconnected components are stitched to their nearest neighbour so
    the result is always connected.  Deterministic for a given ``seed``.
    """
    if n_routers < 2:
        raise ValueError("need at least two routers")
    if n_host_pairs < 1 or 2 * n_host_pairs > n_routers:
        raise ValueError("host pairs must fit on distinct routers")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1.0, size=(n_routers, 2))
    names = [f"r{i}" for i in range(n_routers)]
    net = Network()
    for name in names:
        net.add_router(name, edge=True)

    def dist(i: int, j: int) -> float:
        return float(np.hypot(*(points[i] - points[j])))

    def connect(i: int, j: int) -> None:
        net.add_link(names[i], names[j], rate_mbps=rate_mbps,
                     delay_ms=max(0.1, dist(i, j) * delay_per_unit_ms))

    graph = nx.Graph()
    graph.add_nodes_from(range(n_routers))
    for i in range(n_routers):
        for j in range(i + 1, n_routers):
            if dist(i, j) <= radius:
                connect(i, j)
                graph.add_edge(i, j)
    # stitch components: repeatedly join the closest cross-component pair
    components = [sorted(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        best = None
        for a in components[0]:
            for comp in components[1:]:
                for b in comp:
                    d = dist(a, b)
                    if best is None or d < best[0]:
                        best = (d, a, b)
        _, a, b = best
        connect(a, b)
        graph.add_edge(a, b)
        components = [sorted(c) for c in nx.connected_components(graph)]
    # host pairs on the routers farthest from the centroid (peripheral
    # attachment gives longer, more interesting candidate paths)
    centroid = points.mean(axis=0)
    by_spread = sorted(
        range(n_routers),
        key=lambda i: (-float(np.hypot(*(points[i] - centroid))), i),
    )
    chosen = by_spread[: 2 * n_host_pairs]
    for pair in range(n_host_pairs):
        src_r = names[chosen[2 * pair]]
        dst_r = names[chosen[2 * pair + 1]]
        net.add_host(f"h{pair}a", ip=f"10.{pair}.1.2")
        net.add_host(f"h{pair}b", ip=f"10.{pair}.2.2")
        net.add_link(f"h{pair}a", src_r, rate_mbps=host_rate_mbps, delay_ms=0.1)
        net.add_link(dst_r, f"h{pair}b", rate_mbps=host_rate_mbps, delay_ms=0.1)
    return net.build()


def random_wan(
    n_routers: int = 8,
    extra_edges: int = 6,
    seed: int = 0,
    rate_mbps: float = 100.0,
    delay_ms: float = 2.0,
    n_host_pairs: int = 1,
) -> Network:
    """Connected random WAN: a random spanning tree plus ``extra_edges``
    chords, with ``n_host_pairs`` host pairs attached to distinct routers.

    Deterministic for a given ``seed``.
    """
    if n_routers < 2:
        raise ValueError("need at least two routers")
    if n_host_pairs < 1 or 2 * n_host_pairs > n_routers:
        raise ValueError("host pairs must fit on distinct routers")
    rng = np.random.default_rng(seed)
    net = Network()
    names = [f"r{i}" for i in range(n_routers)]
    for name in names:
        net.add_router(name, edge=True)  # any router may terminate tunnels
    # random spanning tree (random attachment order)
    order = rng.permutation(n_routers)
    edges = set()
    for i in range(1, n_routers):
        a = names[order[i]]
        b = names[order[int(rng.integers(0, i))]]
        edges.add(frozenset((a, b)))
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
    # chords
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * extra_edges:
        attempts += 1
        a, b = rng.choice(names, size=2, replace=False)
        key = frozenset((a, b))
        if key in edges:
            continue
        edges.add(key)
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
        added += 1
    # hosts
    router_choices = rng.choice(n_routers, size=2 * n_host_pairs, replace=False)
    for pair in range(n_host_pairs):
        src_r = names[router_choices[2 * pair]]
        dst_r = names[router_choices[2 * pair + 1]]
        h_src = f"h{pair}a"
        h_dst = f"h{pair}b"
        net.add_host(h_src, ip=f"10.{pair}.1.2")
        net.add_host(h_dst, ip=f"10.{pair}.2.2")
        net.add_link(h_src, src_r, rate_mbps=1000.0, delay_ms=0.1)
        net.add_link(dst_r, h_dst, rate_mbps=1000.0, delay_ms=0.1)
    return net.build()
