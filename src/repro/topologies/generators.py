"""Parametric topology generators for stress and property tests."""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.net.topology import Network

__all__ = ["line_topology", "random_wan"]


def line_topology(
    n_routers: int = 3,
    rate_mbps: float = 100.0,
    delay_ms: float = 1.0,
) -> Network:
    """``h1 - r0 - r1 - ... - r{n-1} - h2`` (the minimal tunnel testbed)."""
    if n_routers < 1:
        raise ValueError("need at least one router")
    net = Network()
    net.add_host("h1", ip="10.0.1.2")
    net.add_host("h2", ip="10.0.2.2")
    names = [f"r{i}" for i in range(n_routers)]
    for i, name in enumerate(names):
        net.add_router(name, edge=(i in (0, n_routers - 1)))
    net.add_link("h1", names[0], rate_mbps=1000.0, delay_ms=0.1)
    net.add_link(names[-1], "h2", rate_mbps=1000.0, delay_ms=0.1)
    for a, b in zip(names[:-1], names[1:]):
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
    return net.build()


def random_wan(
    n_routers: int = 8,
    extra_edges: int = 6,
    seed: int = 0,
    rate_mbps: float = 100.0,
    delay_ms: float = 2.0,
    n_host_pairs: int = 1,
) -> Network:
    """Connected random WAN: a random spanning tree plus ``extra_edges``
    chords, with ``n_host_pairs`` host pairs attached to distinct routers.

    Deterministic for a given ``seed``.
    """
    if n_routers < 2:
        raise ValueError("need at least two routers")
    if n_host_pairs < 1 or 2 * n_host_pairs > n_routers:
        raise ValueError("host pairs must fit on distinct routers")
    rng = np.random.default_rng(seed)
    net = Network()
    names = [f"r{i}" for i in range(n_routers)]
    for name in names:
        net.add_router(name, edge=True)  # any router may terminate tunnels
    # random spanning tree (random attachment order)
    order = rng.permutation(n_routers)
    edges = set()
    for i in range(1, n_routers):
        a = names[order[i]]
        b = names[order[int(rng.integers(0, i))]]
        edges.add(frozenset((a, b)))
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
    # chords
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * extra_edges:
        attempts += 1
        a, b = rng.choice(names, size=2, replace=False)
        key = frozenset((a, b))
        if key in edges:
            continue
        edges.add(key)
        net.add_link(a, b, rate_mbps=rate_mbps, delay_ms=delay_ms)
        added += 1
    # hosts
    router_choices = rng.choice(n_routers, size=2 * n_host_pairs, replace=False)
    for pair in range(n_host_pairs):
        src_r = names[router_choices[2 * pair]]
        dst_r = names[router_choices[2 * pair + 1]]
        h_src = f"h{pair}a"
        h_dst = f"h{pair}b"
        net.add_host(h_src, ip=f"10.{pair}.1.2")
        net.add_host(h_dst, ip=f"10.{pair}.2.2")
        net.add_link(h_src, src_r, rate_mbps=1000.0, delay_ms=0.1)
        net.add_link(dst_r, h_dst, rate_mbps=1000.0, delay_ms=0.1)
    return net.build()
