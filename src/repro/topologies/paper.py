"""The three concrete topologies of the paper.

Fig. 9's testbed is a subset of the Global P4 Lab: edge routers MIA
(Miami) and AMS (Amsterdam), core routers SAO (Sao Paulo), CHI (Chicago)
and CAL (California), host1 behind MIA and host2 behind AMS.  The three
tunnels of the experiments are

    Tunnel 1: MIA - SAO - AMS
    Tunnel 2: MIA - CHI - AMS
    Tunnel 3: MIA - CAL - CHI - AMS

Fig. 11 injects a 20 ms delay on MIA-SAO (the paper does it with ``tc``
on the host OS); Fig. 12 caps link rates at 20/10/5 Mbps as listed in
:func:`fig12_capacities`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.net.topology import Network

__all__ = [
    "fig1_line",
    "FIG1_NODE_IDS",
    "three_node",
    "global_p4_lab",
    "fig12_capacities",
    "ROUTER_IPS",
    "TUNNEL1",
    "TUNNEL2",
    "TUNNEL3",
]

#: Node IDs used in the paper's Fig. 1 worked example.
FIG1_NODE_IDS = {"s1": 0b11, "s2": 0b111, "s3": 0b1011}

#: Loopback-style addresses for the Fig. 9 routers ("tunnel destination
#: 20.20.0.7" in the Fig. 10 config is AMS).
ROUTER_IPS = {
    "MIA": "20.20.0.1",
    "SAO": "20.20.0.3",
    "CHI": "20.20.0.5",
    "CAL": "20.20.0.6",
    "AMS": "20.20.0.7",
}

TUNNEL1 = ("MIA", "SAO", "AMS")
TUNNEL2 = ("MIA", "CHI", "AMS")
TUNNEL3 = ("MIA", "CAL", "CHI", "AMS")

#: Host addressing from the Fig. 10 access list: 40.40.1.0/24 behind MIA
#: reaches 40.40.2.2 behind AMS.
HOST1_IP = "40.40.1.2"
HOST2_IP = "40.40.2.2"


def fig1_line():
    """Adjacency + node IDs of the Fig. 1 example (PolKA layer only).

    Ports are numbered so the output-port polynomials match the paper:
    o1 = 1, o2 = t (port 2), o3 = t^2 + t (port 6).
    """
    adjacency = {
        "s1": {"s2": 1, "edge_in": 0},
        "s2": {"s3": 2, "s1": 1, "stub2": 0},
        "s3": {"edge_out": 6, "s2": 1, "stub3": 0},
    }
    return adjacency, dict(FIG1_NODE_IDS)


def three_node(
    direct_mbps: float = 10.0,
    via_mbps: float = 10.0,
    direct_delay_ms: float = 5.0,
    via_delay_ms: float = 3.0,
) -> Network:
    """Fig. 2's triangle: source ``s``, intermediate ``i``, destination ``d``.

    Demand from s to d can use the direct edge (``x_sd``) or the two-hop
    path through i (``x_sid``) — the flow-split variables of Eq. (1)-(3).
    """
    net = Network()
    net.add_host("hs", ip="10.1.0.2")
    net.add_host("hd", ip="10.2.0.2")
    for r in ("s", "i", "d"):
        net.add_router(r, edge=(r in ("s", "d")))
    net.add_link("hs", "s", rate_mbps=1000.0, delay_ms=0.1)
    net.add_link("hd", "d", rate_mbps=1000.0, delay_ms=0.1)
    net.add_link("s", "d", rate_mbps=direct_mbps, delay_ms=direct_delay_ms)
    net.add_link("s", "i", rate_mbps=via_mbps, delay_ms=via_delay_ms / 2)
    net.add_link("i", "d", rate_mbps=via_mbps, delay_ms=via_delay_ms / 2)
    return net.build()


def fig12_capacities() -> Dict[Tuple[str, str], float]:
    """Link rate caps of the Fig. 12 experiment (Mbps)."""
    return {
        ("MIA", "SAO"): 20.0,
        ("SAO", "AMS"): 20.0,
        ("CHI", "AMS"): 20.0,
        ("MIA", "CHI"): 10.0,
        ("MIA", "CAL"): 5.0,
        ("CAL", "CHI"): 5.0,
    }


def global_p4_lab(
    rates: Optional[Mapping[Tuple[str, str], float]] = None,
    delays: Optional[Mapping[Tuple[str, str], float]] = None,
    queue_packets: int = 100,
    host_rate_mbps: float = 1000.0,
) -> Network:
    """Build the Fig. 9 testbed subset.

    Parameters
    ----------
    rates:
        Per-link Mbps overrides, e.g. :func:`fig12_capacities`; links not
        listed default to 100 Mbps.
    delays:
        Per-link one-way ms overrides (Fig. 11 uses
        ``{("MIA", "SAO"): 20.0}``); default 1 ms per core link.
    """
    rates = dict(rates or {})
    delays = dict(delays or {})

    def rate(a: str, b: str) -> float:
        return rates.get((a, b), rates.get((b, a), 100.0))

    def delay(a: str, b: str) -> float:
        return delays.get((a, b), delays.get((b, a), 1.0))

    net = Network()
    net.add_host("host1", ip=HOST1_IP)
    net.add_host("host2", ip=HOST2_IP)
    for router in ("MIA", "SAO", "CHI", "CAL", "AMS"):
        net.add_router(router, edge=(router in ("MIA", "AMS")))
    net.add_link("host1", "MIA", rate_mbps=host_rate_mbps, delay_ms=0.1)
    net.add_link("AMS", "host2", rate_mbps=host_rate_mbps, delay_ms=0.1)
    for a, b in [
        ("MIA", "SAO"), ("SAO", "AMS"), ("MIA", "CHI"),
        ("CHI", "AMS"), ("MIA", "CAL"), ("CAL", "CHI"),
    ]:
        net.add_link(
            a, b,
            rate_mbps=rate(a, b),
            delay_ms=delay(a, b),
            queue_packets=queue_packets,
        )
    return net.build()
