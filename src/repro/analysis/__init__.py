"""Static analysis subsystem: the repro-lint determinism checker.

The repo's correctness story rests on invariants no unit test can prove
cheaply — byte-identical parallel sweeps, same-seed identical artifacts,
bit-stable event ordering.  This package checks the lintable subset of
those invariants statically, on every PR, via an ``ast``-based rule
engine (:mod:`repro.analysis.engine`), eight project-specific rules
(:mod:`repro.analysis.rules`, ids ``RL001``–``RL008``), and
deterministic text/JSON reporters (:mod:`repro.analysis.report`).

Surfaced as ``repro lint [PATHS]`` (see :mod:`repro.cli`) and as a CI
gate; the invariant catalog lives in ``docs/DETERMINISM.md``.

The package is stdlib-only by design: the CI lint job runs it without
installing the simulation stack.
"""

from .engine import (
    Analyzer,
    Baseline,
    FileContext,
    Finding,
    PARSE_ERROR_ID,
    Rule,
    all_rules,
    get_rule,
    register,
)
from .report import JSON_SCHEMA_VERSION, render_json, render_text

__all__ = [
    "Analyzer",
    "Baseline",
    "FileContext",
    "Finding",
    "PARSE_ERROR_ID",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
]
