"""Rule-plugin static-analysis engine for the repro lint subsystem.

Everything downstream of the scenario runner stakes correctness on
determinism — byte-identical ``--jobs N`` sweep collection, same-seed
byte-identical result JSON, content-hashed cache keys, the calendar
queue's bit-identical ``(time, seq)`` ordering.  Those invariants are
*behavioural*, so the test suite can only re-prove them end to end,
slowly, after the fact.  This engine proves the lintable subset
statically: each :class:`Rule` encodes one project invariant as an AST
pattern, and ``repro lint`` walks the tree at CI speed on every PR.

Design
------
:class:`Rule`
    One invariant: an id (``RLxxx``), a severity, optional path scoping
    (``include``/``exclude`` fnmatch globs on the posix relpath), and a
    ``check(ctx)`` generator yielding ``(line, col, message)`` triples.
    Concrete rules live in :mod:`repro.analysis.rules` and register
    themselves via :func:`register`.
:class:`FileContext`
    One parsed file: source, AST, split lines, and the inline-directive
    map scanned from real COMMENT tokens (``tokenize``-based, so a
    string literal that merely *mentions* a directive never triggers
    one).
:class:`Analyzer`
    Orchestration: walk paths, parse, dispatch rules, honour inline
    ``# repro-lint: disable=RLxxx`` comments, mark baselined findings.
:class:`Baseline`
    Grandfathered findings, matched by content fingerprint —
    ``sha256(path :: rule :: stripped source line)`` — so shifting line
    numbers never invalidate an entry, while editing the flagged line
    (the thing a baseline must not hide) does.

The engine itself is import-light (stdlib only) and deterministic:
findings are sorted, reports carry no timestamps, and JSON output uses
``sort_keys`` — the same invariants it enforces.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import hashlib
import io
import json
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "Analyzer",
    "Baseline",
    "FileContext",
    "Finding",
    "PARSE_ERROR_ID",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]

#: Engine-emitted pseudo-rule for files that do not parse: a broken
#: file must fail the lint gate loudly, never silently pass it.
PARSE_ERROR_ID = "RL000"

#: Marker that disables every rule on a line (``disable`` with no ids).
_ALL = "*"

_DIRECTIVE_PREFIX = "repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    name: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    baselined: bool = False

    def fingerprint(self) -> str:
        """Content fingerprint used for baseline matching.

        Deliberately excludes the line number: inserting code above a
        grandfathered finding must not resurrect it, while editing the
        flagged line itself must."""
        blob = f"{self.path}::{self.rule}::{self.snippet}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (schema pinned by the reporter tests)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class FileContext:
    """One file, parsed once and shared by every rule."""

    path: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for one statically-checkable invariant.

    Subclasses set the class attributes and implement :meth:`check`;
    decorating with :func:`register` adds one instance to the global
    registry the CLI and CI gate run.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""
    rationale: str = ""
    #: fnmatch globs on the posix relpath; empty means "every file".
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(fnmatch.fnmatch(path, glob) for glob in self.exclude):
            return False
        if self.include:
            return any(fnmatch.fnmatch(path, glob) for glob in self.include)
        return True

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        """Yield ``(line, col, message)`` for every violation."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet(line),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add one rule to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs an id and a name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order (imports the built-ins)."""
    from repro.analysis import rules as _builtin  # noqa: F401  (registers)

    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    all_rules()  # ensure built-ins are registered
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r}; "
            f"choose from {', '.join(sorted(_REGISTRY))}"
        ) from None


# ------------------------------------------------------- inline directives


def _parse_directives(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], bool]:
    """Scan real comments for ``# repro-lint: ...`` directives.

    Returns ``(per-line disabled rule ids, skip_file)``.  Uses
    ``tokenize`` rather than substring search so directives inside
    string literals (e.g. in this very engine's tests) are inert.
    """
    disabled: Dict[int, FrozenSet[str]] = {}
    skip_file = False
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return disabled, skip_file
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        text = tok.string.lstrip("#").strip()
        if not text.startswith(_DIRECTIVE_PREFIX):
            continue
        directive = text[len(_DIRECTIVE_PREFIX):].strip()
        if directive == "skip-file":
            skip_file = True
        elif directive == "disable":
            disabled[tok.start[0]] = frozenset((_ALL,))
        elif directive.startswith("disable="):
            ids = frozenset(
                part.strip()
                for part in directive[len("disable="):].split(",")
                if part.strip()
            )
            if ids:
                line = tok.start[0]
                disabled[line] = disabled.get(line, frozenset()) | ids
    return disabled, skip_file


def _is_disabled(
    disabled: Mapping[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    ids = disabled.get(line)
    return ids is not None and (_ALL in ids or rule_id in ids)


# ----------------------------------------------------------------- baseline


@dataclass(frozen=True)
class Baseline:
    """Grandfathered findings, matched by content fingerprint."""

    fingerprints: FrozenSet[str] = frozenset()

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = payload.get("entries", [])
        return cls(
            fingerprints=frozenset(
                entry["fingerprint"] for entry in entries
            )
        )

    @staticmethod
    def dump(findings: Sequence[Finding], path: Union[str, Path]) -> None:
        """Write every finding as a baseline entry (sorted, stable)."""
        entries = [
            {
                "fingerprint": f.fingerprint(),
                "path": f.path,
                "rule": f.rule,
                "line": f.line,
                "snippet": f.snippet,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        text = json.dumps(
            {"version": 1, "entries": entries}, indent=2, sort_keys=True
        )
        Path(path).write_text(text + "\n", encoding="utf-8")

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints


# ----------------------------------------------------------------- analyzer


class Analyzer:
    """Run a rule set over files/trees and collect sorted findings."""

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        baseline: Optional[Baseline] = None,
        root: Union[str, Path, None] = None,
    ) -> None:
        self.rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else all_rules()
        )
        self.baseline = baseline or Baseline()
        self.root = Path(root) if root is not None else Path.cwd()

    # ------------------------------------------------------------ paths

    def _relpath(self, file: Path) -> str:
        try:
            rel = file.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = file
        return rel.as_posix()

    @staticmethod
    def _collect(paths: Sequence[Union[str, Path]]) -> List[Path]:
        files: List[Path] = []
        seen = set()
        for entry in paths:
            path = Path(entry)
            candidates = (
                sorted(path.rglob("*.py")) if path.is_dir() else [path]
            )
            for candidate in candidates:
                key = candidate.resolve()
                if key not in seen:
                    seen.add(key)
                    files.append(candidate)
        return files

    # ------------------------------------------------------------- lint

    def lint_source(self, source: str, path: str) -> List[Finding]:
        """Lint one in-memory module; ``path`` drives rule scoping."""
        disabled, skip_file = _parse_directives(source)
        if skip_file:
            return []
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule=PARSE_ERROR_ID,
                    name="parse-error",
                    severity="error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            ]
        ctx = FileContext(
            path=path,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            for line, col, message in rule.check(ctx):
                if _is_disabled(disabled, line, rule.id):
                    continue
                findings.append(rule.finding(ctx, line, col, message))
        findings = [
            dataclasses.replace(f, baselined=True)
            if self.baseline.contains(f)
            else f
            for f in findings
        ]
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_file(self, file: Union[str, Path]) -> List[Finding]:
        path = Path(file)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, self._relpath(path))

    def lint_paths(
        self, paths: Sequence[Union[str, Path]]
    ) -> List[Finding]:
        """Lint files and directory trees; results are globally sorted
        so output (and therefore CI artifacts) is deterministic."""
        findings: List[Finding] = []
        for file in self._collect(paths):
            findings.extend(self.lint_file(file))
        findings.sort(key=Finding.sort_key)
        return findings
