"""Deterministic reporters for repro-lint findings.

Two renderings of one sorted finding list:

- :func:`render_text` — ``path:line:col: RLxxx message [name]`` per
  active finding, with a one-line summary (the CI log / terminal view);
- :func:`render_json` — a versioned, ``sort_keys`` JSON document the CI
  gate uploads as an artifact and tools diff across runs.

Neither embeds timestamps, hostnames, or absolute paths: two runs over
identical trees must produce byte-identical reports (the engine holds
itself to the invariants it enforces).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import Finding

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bump when the JSON document layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


def _by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def render_text(
    findings: Sequence[Finding], show_baselined: bool = False
) -> str:
    """Human/CI-log view: one line per finding plus a summary."""
    active = [f for f in findings if not f.baselined]
    baselined = [f for f in findings if f.baselined]
    shown = findings if show_baselined else active
    lines: List[str] = []
    for f in shown:
        suffix = " (baselined)" if f.baselined else ""
        lines.append(
            f"{f.location()}: {f.rule} {f.message} [{f.name}]{suffix}"
        )
    if not active:
        summary = "clean: no findings"
    else:
        summary = (
            f"{len(active)} finding(s): "
            + ", ".join(
                f"{rule} x{count}"
                for rule, count in sorted(_by_rule(active).items())
            )
        )
    if baselined:
        summary += f" ({len(baselined)} baselined)"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """Machine view: versioned, deterministic (sorted keys, sorted
    findings, no timestamps) — safe to diff across CI runs."""
    active = [f for f in findings if not f.baselined]
    document = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "total": len(findings),
            "active": len(active),
            "baselined": len(findings) - len(active),
            "by_rule": _by_rule(active),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
