"""Built-in repro-lint rules: the project's determinism & hot-path
invariants as AST patterns.

Each rule documents *which* end-to-end guarantee it protects (see
``docs/DETERMINISM.md`` for the full catalog):

========  ======================  =========================================
id        name                    invariant protected
========  ======================  =========================================
RL001     unseeded-random         same seed => same run (all backends)
RL002     wall-clock              results are functions of *virtual* time
RL003     unordered-iteration     scheduling/serialization order is stable
RL004     unsorted-json           artifacts/cache keys are byte-stable
RL005     mutable-default         no cross-call state leaks into results
RL006     float-equality          solver branches don't flip on rounding
RL007     serialization-drift     dataclass fields reach ``to_dict``
RL008     unbounded-growth        service-mode memory stays bounded
========  ======================  =========================================

All detection is name-resolution based: a module-level import map
(``import numpy as np`` -> ``numpy``, ``from time import perf_counter``
-> ``time.perf_counter``) expands every call's dotted name before it is
matched, so aliased imports cannot dodge a rule and same-named local
variables cannot trip one.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from .engine import FileContext, Rule, register

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "UnsortedJsonRule",
    "MutableDefaultRule",
    "FloatEqualityRule",
    "SerializationDriftRule",
    "UnboundedGrowthRule",
]

_Violation = Tuple[int, int, str]


# ------------------------------------------------------------ name helpers


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local binding -> fully-qualified module/attribute path.

    Only *imported* bindings appear, so ``rng.random()`` on a local
    variable named ``rng`` (or even ``random``) never resolves to the
    stdlib module unless the module was actually imported.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{module}.{alias.name}"
    return aliases


def resolve_call(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """Fully-qualified dotted name of a call target, or None when the
    head binding was not imported in this module."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    full = aliases.get(head)
    if full is None:
        return None
    return full + ("." + rest if rest else "")


def _calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


# ------------------------------------------------------------------- RL001


@register
class UnseededRandomRule(Rule):
    id = "RL001"
    name = "unseeded-random"
    severity = "error"
    description = (
        "module-level random.* / np.random.* call instead of an "
        "explicitly seeded generator"
    )
    rationale = (
        "Global RNG state is shared across the whole process: any "
        "import or unrelated call perturbs the stream, so same-seed "
        "runs stop being byte-identical. Thread a seeded "
        "np.random.Generator (np.random.default_rng(seed)) instead."
    )

    _PY_RANDOM = frozenset(
        {
            "random", "randint", "randrange", "choice", "choices",
            "shuffle", "sample", "uniform", "triangular", "gauss",
            "normalvariate", "lognormvariate", "expovariate",
            "vonmisesvariate", "paretovariate", "weibullvariate",
            "betavariate", "gammavariate", "seed", "getrandbits",
            "randbytes", "getstate", "setstate",
        }
    )
    #: numpy.random names that construct explicitly-seeded generators
    #: (allowed); everything else on numpy.random is legacy global state.
    _NP_SEEDED = frozenset(
        {
            "default_rng", "Generator", "SeedSequence", "BitGenerator",
            "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in _calls(ctx):
            resolved = resolve_call(node, aliases)
            if resolved is None:
                continue
            if resolved.startswith("random."):
                attr = resolved[len("random."):]
                if attr in self._PY_RANDOM:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"call to global-state random.{attr}(); pass an "
                        "explicit seeded rng (np.random.default_rng(seed))",
                    )
                elif attr == "Random" and not (node.args or node.keywords):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "random.Random() without a seed argument",
                    )
            elif resolved.startswith("numpy.random."):
                attr = resolved[len("numpy.random."):]
                if attr in self._NP_SEEDED:
                    continue
                if attr == "RandomState" and (node.args or node.keywords):
                    continue  # legacy but explicitly seeded
                yield (
                    node.lineno,
                    node.col_offset,
                    f"call to legacy global-state numpy.random.{attr}(); "
                    "use np.random.default_rng(seed) and pass the "
                    "Generator down",
                )


# ------------------------------------------------------------------- RL002


@register
class WallClockRule(Rule):
    id = "RL002"
    name = "wall-clock"
    severity = "error"
    description = (
        "wall-clock read (time.time / datetime.now / perf_counter) in "
        "simulation, framework, or sweep code"
    )
    rationale = (
        "Results must be pure functions of (spec, seed): virtual time "
        "comes from Simulator.now, never the host clock. Wall-clock "
        "reads belong in benchmarks/ only, where wall time IS the "
        "measurement."
    )
    exclude = ("*benchmarks/*",)

    _WALL_CLOCK = frozenset(
        {
            "time.time", "time.time_ns",
            "time.perf_counter", "time.perf_counter_ns",
            "time.monotonic", "time.monotonic_ns",
            "time.process_time", "time.process_time_ns",
            "time.localtime", "time.gmtime", "time.ctime",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in _calls(ctx):
            resolved = resolve_call(node, aliases)
            if resolved in self._WALL_CLOCK:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read {resolved}(); use virtual time "
                    "(Simulator.now) — wall clock belongs in benchmarks/",
                )


# ------------------------------------------------------------------- RL003


@register
class UnorderedIterationRule(Rule):
    id = "RL003"
    name = "unordered-iteration"
    severity = "error"
    description = (
        "iteration over a set / dict.keys() feeding scheduling, "
        "hashing, or serialization without a sorted() wrapper"
    )
    rationale = (
        "Set iteration order depends on insertion/deletion history and "
        "hash seeds; dict order on build history. Event scheduling, "
        "digests, and serialized artifacts must iterate a sorted "
        "ordering or byte-identical reruns break."
    )

    #: order-sensitive consumers: iterating constructs plus these calls.
    _CONSUMERS = frozenset({"list", "tuple", "enumerate"})

    @staticmethod
    def _unordered(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return ".keys()"
        return None

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                func = node.func
                is_join = (
                    isinstance(func, ast.Attribute) and func.attr == "join"
                )
                is_consumer = (
                    isinstance(func, ast.Name)
                    and func.id in self._CONSUMERS
                )
                if (is_join or is_consumer) and node.args:
                    iters.append(node.args[0])
            for expr in iters:
                what = self._unordered(expr)
                if what is not None:
                    yield (
                        expr.lineno,
                        expr.col_offset,
                        f"iteration over {what} has no deterministic "
                        "order; wrap in sorted(...) before it feeds "
                        "scheduling, hashing, or serialization",
                    )


# ------------------------------------------------------------------- RL004


@register
class UnsortedJsonRule(Rule):
    id = "RL004"
    name = "unsorted-json"
    severity = "error"
    description = "json.dumps/json.dump without sort_keys=True"
    rationale = (
        "Cache keys and result artifacts are hashed and diffed "
        "byte-for-byte; an unsorted dump serializes in dict build "
        "order, which is not part of any contract."
    )

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in _calls(ctx):
            resolved = resolve_call(node, aliases)
            if resolved not in ("json.dumps", "json.dump"):
                continue
            keywords = {kw.arg: kw.value for kw in node.keywords}
            if None in keywords:  # **kwargs forwarding: cannot judge
                continue
            value = keywords.get("sort_keys")
            if value is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() without sort_keys=True serializes in "
                    "dict build order; artifacts must be byte-stable",
                )
            elif isinstance(value, ast.Constant) and value.value is False:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}(sort_keys=False) is explicitly "
                    "order-unstable",
                )


# ------------------------------------------------------------------- RL005


@register
class MutableDefaultRule(Rule):
    id = "RL005"
    name = "mutable-default"
    severity = "error"
    description = "mutable default argument (list/dict/set/deque/...)"
    rationale = (
        "A mutable default is one shared object across every call: "
        "state leaks between runs, so two same-seed invocations can "
        "diverge. Default to None (or a tuple) and build inside."
    )

    _FACTORY = frozenset(
        {
            "list", "dict", "set",
            "collections.deque", "collections.defaultdict",
            "collections.Counter", "collections.OrderedDict",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(
                    default,
                    (
                        ast.List, ast.Dict, ast.Set,
                        ast.ListComp, ast.DictComp, ast.SetComp,
                    ),
                ):
                    yield (
                        default.lineno,
                        default.col_offset,
                        "mutable default argument is shared across "
                        "calls; use None and build inside the function",
                    )
                elif isinstance(default, ast.Call):
                    resolved = resolve_call(default, aliases)
                    func = default.func
                    bare = (
                        func.id
                        if isinstance(func, ast.Name)
                        else None
                    )
                    if resolved in self._FACTORY or bare in (
                        "list",
                        "dict",
                        "set",
                    ):
                        yield (
                            default.lineno,
                            default.col_offset,
                            "mutable default argument (factory call) is "
                            "evaluated once and shared across calls",
                        )


# ------------------------------------------------------------------- RL006


@register
class FloatEqualityRule(Rule):
    id = "RL006"
    name = "float-equality"
    severity = "error"
    description = "float ==/!= comparison in solver code"
    rationale = (
        "The max-min solver and Hecate's scoring run on accumulated "
        "float arithmetic; exact equality against a float constant "
        "flips branches on rounding noise. Compare against a tolerance "
        "(math.isclose or an epsilon band)."
    )
    include = ("*net/fluid.py", "*hecate/*")

    @staticmethod
    def _floatish(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(
            expr.op, (ast.USub, ast.UAdd)
        ):
            return FloatEqualityRule._floatish(expr.operand)
        if isinstance(expr, ast.Call):
            func = expr.func
            return isinstance(func, ast.Name) and func.id == "float"
        return False

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            has_eq = any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            )
            if has_eq and any(self._floatish(o) for o in operands):
                yield (
                    node.lineno,
                    node.col_offset,
                    "exact float ==/!= comparison in solver code; use "
                    "math.isclose or an epsilon band",
                )


# ------------------------------------------------------------------- RL007


@register
class SerializationDriftRule(Rule):
    id = "RL007"
    name = "serialization-drift"
    severity = "error"
    description = (
        "dataclass field missing from its to_dict serialization"
    )
    rationale = (
        "Result dataclasses are cached and shipped across process "
        "boundaries via to_dict; a field that never reaches it is "
        "silently dropped from every artifact, and artifacts from "
        "before/after the change collide under one CACHE_VERSION. "
        "Serialize the field (and bump CACHE_VERSION) or prefix it "
        "with '_' to mark it non-serialized."
    )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef, aliases: Dict[str, str]) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(target)
            if name is None:
                continue
            head, _, rest = name.partition(".")
            full = aliases.get(head, head)
            resolved = full + ("." + rest if rest else "")
            if resolved in ("dataclasses.dataclass", "dataclass"):
                return True
        return False

    @staticmethod
    def _docstrings(node: ast.ClassDef) -> Set[str]:
        docs = set()
        for sub in ast.walk(node):
            if isinstance(
                sub, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                doc = ast.get_docstring(sub, clean=False)
                if doc is not None:
                    docs.add(doc)
        return docs

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(node, aliases):
                continue
            to_dict = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "to_dict"
                ),
                None,
            )
            if to_dict is None:
                continue
            fields = [
                (stmt.target.id, stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
                and "ClassVar" not in ast.dump(stmt.annotation)
            ]
            docstrings = self._docstrings(node)
            mentioned: Set[str] = set()
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, str)
                    and sub.value not in docstrings
                ):
                    mentioned.add(sub.value)
            for sub in ast.walk(to_dict):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    mentioned.add(sub.attr)
            for field_name, lineno in fields:
                if field_name not in mentioned:
                    yield (
                        lineno,
                        0,
                        f"field {field_name!r} of dataclass "
                        f"{node.name!r} never reaches to_dict(): "
                        "serialize it and bump CACHE_VERSION, or "
                        "rename with a leading underscore",
                    )


# ------------------------------------------------------------------- RL008


@register
class UnboundedGrowthRule(Rule):
    id = "RL008"
    name = "unbounded-growth"
    severity = "error"
    description = (
        "unbounded deque() / audit list in service-mode or audit code"
    )
    rationale = (
        "A long-lived service accretes bus logs, decision logs, and "
        "request trails forever unless they are bounded; deque(maxlen=N) "
        "keeps steady-state memory flat. Genuinely drained queues may "
        "disable this inline with a rationale comment."
    )
    include = ("*framework/*", "*bus.py")

    _AUDIT_MARKERS = ("log", "audit", "trail", "history")

    def check(self, ctx: FileContext) -> Iterator[_Violation]:
        aliases = import_map(ctx.tree)
        for node in _calls(ctx):
            resolved = resolve_call(node, aliases)
            if resolved != "collections.deque":
                continue
            keywords = {kw.arg for kw in node.keywords}
            if "maxlen" in keywords or len(node.args) >= 2:
                continue
            yield (
                node.lineno,
                node.col_offset,
                "deque() without maxlen grows without bound in a "
                "long-lived service; pass maxlen= (or disable inline "
                "with a rationale if the queue is provably drained)",
            )
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.FunctionDef)
                and node.name == "__init__"
            ):
                continue
            for stmt in ast.walk(node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.List)
                    and not value.elts
                ):
                    continue
                attr = target.attr.lower()
                if any(marker in attr for marker in self._AUDIT_MARKERS):
                    yield (
                        stmt.lineno,
                        stmt.col_offset,
                        f"audit attribute self.{target.attr} starts as a "
                        "bare list and will grow without bound; use "
                        "deque(maxlen=...) or an explicit retention "
                        "policy",
                    )
