"""repro.hecate — the AI/ML traffic-engineering optimizer.

Reimplements the Hecate side of the paper's integration: the QoS
prediction pipeline (StandardScaler + 10-lag window + regressor,
Sec. V.B), the Fig. 6 regressor tournament, path-selection objectives,
and the Sec. III LP/convex formulations — exposed directly and as a
message-bus service answering ``askHecatePath`` (Fig. 4).
"""

from .forecasters import (
    HoltLinear,
    HoltWinters,
    SimpleExpSmoothing,
    TimeSeriesQoSPredictor,
)
from .lp import FlowSplit, solve_min_cost, solve_min_delay, solve_min_max_utilization
from .objectives import (
    OBJECTIVES,
    AssignmentResult,
    PathForecast,
    assign_flows,
    choose_max_bandwidth,
    choose_min_latency,
    choose_min_max_utilization,
)
from .predictor import EvaluationResult, QoSPredictor, evaluate_pipeline
from .rl import QLearningPathSelector, TunnelEnv
from .service import (
    ASK_PATH_BATCH_TOPIC,
    ASK_PATH_TOPIC,
    HecateService,
    default_model_factory,
)
from .tournament import (
    PAPER_FIG6_RMSE,
    TournamentEntry,
    TournamentResult,
    run_tournament,
)

__all__ = [
    "QoSPredictor", "EvaluationResult", "evaluate_pipeline",
    "TournamentEntry", "TournamentResult", "run_tournament", "PAPER_FIG6_RMSE",
    "PathForecast", "OBJECTIVES",
    "choose_max_bandwidth", "choose_min_latency", "choose_min_max_utilization",
    "FlowSplit", "solve_min_cost", "solve_min_max_utilization", "solve_min_delay",
    "HecateService", "ASK_PATH_TOPIC", "ASK_PATH_BATCH_TOPIC",
    "default_model_factory",
    "assign_flows", "AssignmentResult",
    "SimpleExpSmoothing", "HoltLinear", "HoltWinters", "TimeSeriesQoSPredictor",
    "QLearningPathSelector", "TunnelEnv",
]
