"""Reinforcement-learning path selection (paper Secs. II.A & VII).

Hecate's lineage (DeepRoute, ref. [16]) used "an AI agent using greedy
Q-learning to learn optimal routing strategies", and the paper's future
work names deep RL as the next optimizer.  This module implements that
baseline: a tabular epsilon-greedy Q-learning agent whose state is the
discretized utilization of each candidate tunnel and whose action is the
tunnel choice for the next flow; the :class:`TunnelEnv` trains it against
the max-min fluid model (fast, exact steady states), after which it can
answer the same "which tunnel?" question the forecasting optimizer does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import resolve_rng
from repro.net.fluid import FluidFlow, max_min_fair

__all__ = ["TunnelEnv", "QLearningPathSelector"]


class TunnelEnv:
    """One-step tunnel-selection episodes on the fluid model.

    Each episode draws a random background load per tunnel (unmanaged
    flows already pinned there), presents the discretized utilization
    vector as the state, and rewards the agent with the max-min rate its
    flow achieves on the chosen tunnel.
    """

    def __init__(
        self,
        tunnel_paths: Mapping[str, Sequence[str]],
        capacities: Mapping[Tuple[str, str], float],
        max_background: int = 3,
        n_bins: int = 4,
        random_state=None,
    ):
        if not tunnel_paths:
            raise ValueError("need at least one tunnel")
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.tunnel_names = sorted(tunnel_paths)
        self.tunnel_paths = {k: tuple(v) for k, v in tunnel_paths.items()}
        self.capacities = dict(capacities)
        self.max_background = max_background
        self.n_bins = n_bins
        self.rng = resolve_rng(random_state)
        self._background: Dict[str, int] = {}

    @property
    def n_actions(self) -> int:
        return len(self.tunnel_names)

    def _bottleneck(self, name: str) -> float:
        caps = []
        for a, b in zip(self.tunnel_paths[name][:-1], self.tunnel_paths[name][1:]):
            caps.append(
                self.capacities.get((a, b), self.capacities.get((b, a)))
            )
        return min(caps)

    def _rates(self, background: Dict[str, int], managed_on: Optional[str]):
        flows: List[FluidFlow] = []
        for name, count in background.items():
            for i in range(count):
                flows.append(
                    FluidFlow.from_path(f"bg_{name}_{i}", self.tunnel_paths[name])
                )
        if managed_on is not None:
            flows.append(FluidFlow.from_path("managed", self.tunnel_paths[managed_on]))
        if not flows:
            return {}
        return max_min_fair(flows, self.capacities)

    def observe(self) -> Tuple[int, ...]:
        """Discretized utilization of each tunnel (current background)."""
        rates = self._rates(self._background, None)
        state = []
        for name in self.tunnel_names:
            carried = sum(
                r for f, r in rates.items() if f.startswith(f"bg_{name}_")
            )
            util = min(carried / self._bottleneck(name), 1.0)
            state.append(min(int(util * self.n_bins), self.n_bins - 1))
        return tuple(state)

    def reset(self) -> Tuple[int, ...]:
        self._background = {
            name: int(self.rng.integers(0, self.max_background + 1))
            for name in self.tunnel_names
        }
        return self.observe()

    def step(self, action: int) -> float:
        """Place the managed flow on ``action``; reward = its fluid rate."""
        if not 0 <= action < self.n_actions:
            raise ValueError(f"invalid action {action}")
        chosen = self.tunnel_names[action]
        rates = self._rates(self._background, chosen)
        return float(rates["managed"])

    def best_action(self) -> int:
        """Oracle action (exhaustive check) — used to grade the agent."""
        rewards = [self.step(a) for a in range(self.n_actions)]
        return int(np.argmax(rewards))


@dataclass
class QLearningPathSelector:
    """Tabular epsilon-greedy Q-learning over tunnel utilization states."""

    env: TunnelEnv
    alpha: float = 0.2
    gamma: float = 0.0  # one-step episodes: pure contextual bandit
    epsilon: float = 0.15
    random_state: Optional[int] = None
    q_table: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)
    episodes_trained: int = 0

    def __post_init__(self):
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self._rng = resolve_rng(self.random_state)

    def _q(self, state: Tuple[int, ...]) -> np.ndarray:
        if state not in self.q_table:
            self.q_table[state] = np.zeros(self.env.n_actions)
        return self.q_table[state]

    def select(self, state: Tuple[int, ...], greedy: bool = False) -> int:
        """Epsilon-greedy during training, greedy at decision time."""
        q = self._q(state)
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, self.env.n_actions))
        best = np.flatnonzero(q == q.max())
        return int(best[0])  # deterministic tie-break

    def train(self, episodes: int = 2000) -> "QLearningPathSelector":
        for _ in range(episodes):
            state = self.env.reset()
            action = self.select(state)
            reward = self.env.step(action)
            q = self._q(state)
            q[action] += self.alpha * (reward - q[action])
            self.episodes_trained += 1
        return self

    def recommend(self) -> str:
        """Greedy tunnel choice for the environment's current state."""
        state = self.env.observe()
        return self.env.tunnel_names[self.select(state, greedy=True)]

    def accuracy_vs_oracle(self, trials: int = 200) -> float:
        """Fraction of random states where the agent matches the oracle
        *reward* (several actions may be equally optimal)."""
        hits = 0
        for _ in range(trials):
            state = self.env.reset()
            agent_reward = self.env.step(self.select(state, greedy=True))
            oracle_reward = self.env.step(self.env.best_action())
            if agent_reward >= oracle_reward - 1e-9:
                hits += 1
        return hits / trials
