"""Hecate as a framework service ("askHecatePath" in Fig. 4).

Answers path recommendations over the message bus: reads each candidate
path's telemetry history out of the time-series DB, fits the configured
regressor pipeline, forecasts the next ``horizon`` samples and applies
the requested objective.  Falls back to the latest raw measurements when
there is not yet enough history to train on — the behaviour a freshly
booted controller needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bus import Message, MessageBus
from repro.ml import RandomForestRegressor
from repro.net.telemetry import TimeSeriesDB

from .objectives import OBJECTIVES, PathForecast
from .predictor import QoSPredictor

__all__ = [
    "HecateService",
    "ASK_PATH_TOPIC",
    "ASK_PATH_BATCH_TOPIC",
    "EVICT_PATH_TOPIC",
    "default_model_factory",
]

ASK_PATH_TOPIC = "hecate.ask_path"
ASK_PATH_BATCH_TOPIC = "hecate.ask_path_batch"
EVICT_PATH_TOPIC = "hecate.evict_path"


def default_model_factory():
    """The paper integrates RFR; 30 trees keep control-loop latency low
    while preserving forest behaviour (the full default is 100)."""
    return RandomForestRegressor(n_estimators=30, random_state=42)


@dataclass
class Recommendation:
    """One answer to askHecatePath."""

    path: str
    objective: str
    forecasts: Dict[str, List[float]]
    trained: bool  # False -> fallback on raw telemetry

    def as_payload(self) -> Dict:
        return {
            "path": self.path,
            "objective": self.objective,
            "forecasts": self.forecasts,
            "trained": self.trained,
        }


class HecateService:
    """The Optimizer of Fig. 3, listening on ``hecate.ask_path``.

    Request payload::

        {"paths": ["T1", "T2", ...],      # telemetry path names
         "objective": "max_bandwidth",    # any registered objective
         "horizon": 10,                   # forecast steps (default 10)
         "app_class": "voip"}             # scored by app-aware objectives

    Replies with ``Recommendation.as_payload()``.
    """

    MIN_TRAIN_SAMPLES = 30

    def __init__(
        self,
        db: TimeSeriesDB,
        bus: Optional[MessageBus] = None,
        model_factory: Callable[[], object] = default_model_factory,
        n_lags: int = 10,
    ):
        self.db = db
        self.model_factory = model_factory
        self.n_lags = n_lags
        self.asked: int = 0
        self.fits: int = 0  # regressor fits actually performed
        self.forecast_cache_hits: int = 0  # asks served without refit
        #: (path, horizon) -> (store cursor at fit time, forecast): a
        #: path whose telemetry has not advanced since the cached fit is
        #: served from here — e.g. the placement storm at a scenario's
        #: start asks about the same tunnels many times within one
        #: sampling interval, and must pay for one fit, not hundreds.
        #: Keyed per horizon so alternating horizons don't evict each
        #: other; entries are invalidated by the cursor moving.
        self._forecast_cache: Dict[Tuple[str, int], Tuple[int, PathForecast]] = {}
        if bus is not None:
            bus.subscribe(ASK_PATH_TOPIC, self._on_ask)
            bus.subscribe(ASK_PATH_BATCH_TOPIC, self._on_ask_batch)
            bus.subscribe(EVICT_PATH_TOPIC, self._on_evict)

    # ------------------------------------------------------------ lifecycle

    def evict_path(self, path: str) -> int:
        """Drop every cached forecast for ``path`` (all horizons).

        Called when a tunnel is torn down: under sustained churn the
        forecast cache would otherwise accumulate one entry per
        (departed tunnel, horizon) forever.  Returns the number of
        entries evicted; unknown paths evict zero (idempotent)."""
        stale = [key for key in self._forecast_cache if key[0] == path]
        for key in stale:
            del self._forecast_cache[key]
        return len(stale)

    def _on_evict(self, message: Message) -> Dict:
        path = message.payload.get("path")
        if not path:
            return {"ok": False, "error": "evict_path needs a 'path'"}
        return {"ok": True, "evicted": self.evict_path(path)}

    # ------------------------------------------------------------ queries

    def _history(self, path: str, metric: str) -> np.ndarray:
        _, values = self.db.series(f"path:{path}:{metric}")
        return values

    def forecast_path(self, path: str, horizon: int = 10) -> PathForecast:
        """Forecast one path's available bandwidth + latest latency/util.

        Cached on the telemetry store's cursor: if the path's series has
        not grown since the last call with the same horizon, the cached
        forecast is returned and no regressor is refit (the pipeline is
        deterministic, so identical history means an identical
        forecast).  One new sample invalidates the entry.
        """
        cursor = self.db.count(f"path:{path}:available_mbps")
        if cursor == 0:
            raise KeyError(f"no telemetry recorded for path {path!r}")
        cached = self._forecast_cache.get((path, horizon))
        if cached is not None and cached[0] == cursor:
            self.forecast_cache_hits += 1
            return cached[1]
        history = self._history(path, "available_mbps")
        if history.size >= max(self.MIN_TRAIN_SAMPLES, self.n_lags + 2):
            predictor = QoSPredictor(self.model_factory(), n_lags=self.n_lags)
            predictor.fit(history)
            self.fits += 1
            forecast = predictor.forecast(history, steps=horizon)
            forecast = np.clip(forecast, 0.0, None)
        else:
            # cold start: repeat the most recent observation
            forecast = np.full(horizon, float(history[-1]))
        result = PathForecast(
            name=path,
            available_mbps=forecast,
            latency_ms=self.db.latest(f"path:{path}:latency_ms", 0.0),
            bottleneck_utilization=self.db.latest(f"path:{path}:util", 0.0),
            jitter_ms=self.db.latest(f"path:{path}:jitter_ms", 0.0),
            loss_rate=self.db.latest(f"path:{path}:loss", 0.0),
        )
        self._forecast_cache[(path, horizon)] = (cursor, result)
        return result

    def recommend(
        self,
        paths: Sequence[str],
        objective: str = "max_bandwidth",
        horizon: int = 10,
        app_class: str = "generic",
    ) -> Recommendation:
        return self._recommend(
            paths, objective, horizon, memo={}, app_class=app_class
        )

    def recommend_batch(
        self,
        groups: Sequence[Dict],
        horizon: int = 10,
    ) -> List[Recommendation]:
        """One recommendation per group, forecasting each path once.

        ``groups`` is a sequence of ``{"paths": [...], "objective": ...}``
        dicts (one per flow group the Controller re-optimizes).  A path
        appearing in several groups is fitted and forecast a single time
        — that, plus the single bus round-trip, is what makes the
        incremental re-optimization tick cheap on many-group scenarios.
        """
        if not groups:
            raise ValueError("no groups to recommend for")
        memo: Dict[str, PathForecast] = {}
        return [
            self._recommend(
                group["paths"],
                group.get("objective", "max_bandwidth"),
                horizon,
                memo,
                app_class=group.get("app_class", "generic"),
            )
            for group in groups
        ]

    def _recommend(
        self,
        paths: Sequence[str],
        objective: str,
        horizon: int,
        memo: Dict[str, PathForecast],
        app_class: str = "generic",
    ) -> Recommendation:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; choose from {sorted(OBJECTIVES)}"
            )
        if not paths:
            raise ValueError("no candidate paths")
        forecasts = []
        for path in paths:
            if path not in memo:
                memo[path] = self.forecast_path(path, horizon=horizon)
            forecasts.append(memo[path])
        chosen = OBJECTIVES[objective](forecasts, app_class)
        trained = self.db.count(f"path:{chosen.name}:available_mbps") >= max(
            self.MIN_TRAIN_SAMPLES, self.n_lags + 2
        )
        self.asked += 1
        return Recommendation(
            path=chosen.name,
            objective=objective,
            forecasts={
                f.name: [float(v) for v in f.available_mbps] for f in forecasts
            },
            trained=trained,
        )

    def _on_ask(self, message: Message) -> Dict:
        payload = message.payload
        try:
            rec = self.recommend(
                paths=payload["paths"],
                objective=payload.get("objective", "max_bandwidth"),
                horizon=int(payload.get("horizon", 10)),
                app_class=payload.get("app_class", "generic"),
            )
        except (KeyError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        out = rec.as_payload()
        out["ok"] = True
        return out

    def _on_ask_batch(self, message: Message) -> Dict:
        """Batched askHecatePath: ``{"groups": [{"paths", "objective"}]}``
        in, one entry per group out (single bus round-trip).

        Failures are isolated **per group** — a tunnel with no telemetry
        yet must not void the other groups' recommendations — so each
        entry carries its own ``ok`` flag: ``Recommendation.as_payload()``
        plus ``ok: True``, or ``{"ok": False, "error": ...}``.  The
        forecast memo still spans the whole batch."""
        payload = message.payload
        groups = payload.get("groups")
        if not groups:
            return {"ok": False, "error": "no groups to recommend for"}
        horizon = int(payload.get("horizon", 10))
        memo: Dict[str, PathForecast] = {}
        entries: List[Dict] = []
        for group in groups:
            try:
                rec = self._recommend(
                    group["paths"],
                    group.get("objective", "max_bandwidth"),
                    horizon,
                    memo,
                    app_class=group.get("app_class", "generic"),
                )
            except (KeyError, ValueError) as exc:
                entries.append({"ok": False, "error": str(exc)})
                continue
            entry = rec.as_payload()
            entry["ok"] = True
            entries.append(entry)
        return {"ok": True, "recommendations": entries}
