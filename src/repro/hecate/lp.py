"""The Sec. III traffic-engineering optimization problems (Fig. 2).

Demand ``h`` from source to destination splits over the direct path
(``x_sd``) and the two-hop path through the intermediate node
(``x_sid``), subject to capacity:

* Eq. (2): minimize linear routing cost
  ``F = xi_sd * x_sd + xi_sid * x_sid``  (LP, solved with HiGHS via
  ``scipy.optimize.linprog``);
* min-max: minimize the maximum link utilization (LP after the standard
  epigraph reformulation);
* Eq. (3): minimize the M/M/1-style delay objective
  ``x_sd / (c - x_sd) + 2 x_sid / (c - x_sid)`` (convex; solved exactly
  on the 1-D feasible segment).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import optimize

__all__ = [
    "FlowSplit",
    "solve_min_cost",
    "solve_min_max_utilization",
    "solve_min_delay",
]


@dataclass(frozen=True)
class FlowSplit:
    """Solution of a two-path split: flow on each path + objective value."""

    x_sd: float
    x_sid: float
    objective: float

    @property
    def total(self) -> float:
        return self.x_sd + self.x_sid


def _check_demand(h: float, c_sd: float, c_sid: float) -> None:
    if h < 0:
        raise ValueError("demand h must be non-negative")
    if c_sd <= 0 or c_sid <= 0:
        raise ValueError("capacities must be positive")
    if h > c_sd + c_sid + 1e-12:
        raise ValueError(
            f"demand {h} exceeds total capacity {c_sd + c_sid}; infeasible"
        )


def solve_min_cost(
    h: float,
    c_sd: float,
    c_sid: float,
    cost_sd: float = 1.0,
    cost_sid: float = 2.0,
) -> FlowSplit:
    """Eq. (2): linear-cost split via ``linprog``.

    The classic default costs (1 for the direct hop, 2 for the two-hop
    path) make the LP route on the direct path until it saturates.
    """
    _check_demand(h, c_sd, c_sid)
    result = optimize.linprog(
        c=[cost_sd, cost_sid],
        A_eq=[[1.0, 1.0]],
        b_eq=[h],
        bounds=[(0.0, c_sd), (0.0, c_sid)],
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return FlowSplit(
        x_sd=float(result.x[0]), x_sid=float(result.x[1]),
        objective=float(result.fun),
    )


def solve_min_max_utilization(h: float, c_sd: float, c_sid: float) -> FlowSplit:
    """Minimize ``max(x_sd / c_sd, x_sid / c_sid)`` (epigraph LP).

    Variables ``(x_sd, x_sid, t)``; constraints ``x/c <= t`` plus the
    demand equality.  The optimum equalizes utilization across paths
    whenever the demand allows.
    """
    _check_demand(h, c_sd, c_sid)
    result = optimize.linprog(
        c=[0.0, 0.0, 1.0],
        A_ub=[
            [1.0 / c_sd, 0.0, -1.0],
            [0.0, 1.0 / c_sid, -1.0],
        ],
        b_ub=[0.0, 0.0],
        A_eq=[[1.0, 1.0, 0.0]],
        b_eq=[h],
        bounds=[(0.0, c_sd), (0.0, c_sid), (0.0, None)],
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return FlowSplit(
        x_sd=float(result.x[0]), x_sid=float(result.x[1]),
        objective=float(result.x[2]),
    )


def solve_min_delay(h: float, c: float) -> FlowSplit:
    """Eq. (3): minimize ``x_sd/(c - x_sd) + 2 x_sid/(c - x_sid)``.

    Both paths share capacity ``c`` as in the paper's formulation.  With
    ``x_sid = h - x_sd`` the objective is a strictly convex 1-D function
    on the feasible segment; we solve it with bounded scalar
    minimization.  Requires ``h < c`` per path at the optimum, hence
    ``h < 2c`` overall.
    """
    if c <= 0:
        raise ValueError("capacity must be positive")
    if h < 0:
        raise ValueError("demand must be non-negative")
    if h >= 2 * c:
        raise ValueError(f"demand {h} saturates both paths of capacity {c}")
    lo = max(0.0, h - c * (1.0 - 1e-9))
    hi = min(h, c * (1.0 - 1e-9))

    def objective(x_sd: float) -> float:
        x_sid = h - x_sd
        return x_sd / (c - x_sd) + 2.0 * x_sid / (c - x_sid)

    if hi - lo < 1e-15:
        x_opt = lo
    else:
        result = optimize.minimize_scalar(
            objective, bounds=(lo, hi), method="bounded",
            options={"xatol": 1e-12},
        )
        x_opt = float(result.x)
    return FlowSplit(x_sd=x_opt, x_sid=h - x_opt, objective=objective(x_opt))
