"""Hecate's QoS predictor: the paper's regression pipeline (Sec. V.B).

Pipeline per path: ``StandardScaler`` (fit on training data only) ->
10-lag sliding window -> regressor -> inverse transform.  The integrated
framework asks for the *next 10 steps* (recursive forecast) and routes
the flow onto the path with the most predicted available bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml import StandardScaler, clone, make_lag_matrix, root_mean_squared_error
from repro.ml.base import NotFittedError

__all__ = ["QoSPredictor", "EvaluationResult", "evaluate_pipeline"]

PAPER_N_LAGS = 10
PAPER_HORIZON = 10  # "Hecate computes the predicted values for the next 10 steps"


@dataclass(frozen=True)
class EvaluationResult:
    """Train/test evaluation of one (series, model) pipeline."""

    rmse: float
    predictions: np.ndarray
    observed: np.ndarray
    test_start_index: int


class QoSPredictor:
    """Scaler + lag window + regressor, per the paper's protocol.

    Parameters
    ----------
    model:
        Any ``repro.ml`` regressor (unfitted; it is cloned on ``fit``).
    n_lags:
        History length (the paper fixes 10: values ``t_i .. t_{i-9}``).
    scale:
        Standardize the series with train-split statistics (the paper's
        StandardScaler step).  The tournament disables this only for its
        paper-faithful GPR entry.
    """

    def __init__(self, model, n_lags: int = PAPER_N_LAGS, scale: bool = True):
        if n_lags < 1:
            raise ValueError("n_lags must be >= 1")
        self.model = model
        self.n_lags = n_lags
        self.scale = scale
        self.fitted_model_ = None
        self.scaler_: Optional[StandardScaler] = None

    # ---------------------------------------------------------------- fit

    def fit(self, series) -> "QoSPredictor":
        series = np.asarray(series, dtype=np.float64).ravel()
        if series.size < self.n_lags + 1:
            raise ValueError(
                f"need at least {self.n_lags + 1} samples, got {series.size}"
            )
        if self.scale:
            self.scaler_ = StandardScaler().fit(series.reshape(-1, 1))
            series = self.scaler_.transform(series.reshape(-1, 1)).ravel()
        else:
            self.scaler_ = None
        X, y = make_lag_matrix(series, self.n_lags, horizon=1)
        self.fitted_model_ = clone(self.model)
        self.fitted_model_.fit(X, y)
        return self

    def _check_fitted(self) -> None:
        if self.fitted_model_ is None:
            raise NotFittedError("QoSPredictor is not fitted")

    def _to_scaled(self, values: np.ndarray) -> np.ndarray:
        if self.scaler_ is None:
            return values
        return self.scaler_.transform(values.reshape(-1, 1)).ravel()

    def _from_scaled(self, values: np.ndarray) -> np.ndarray:
        if self.scaler_ is None:
            return values
        return self.scaler_.inverse_transform(values.reshape(-1, 1)).ravel()

    # ------------------------------------------------------------ predict

    def predict_next(self, history) -> float:
        """One-step-ahead prediction from the most recent ``n_lags`` values."""
        self._check_fitted()
        history = np.asarray(history, dtype=np.float64).ravel()
        if history.size < self.n_lags:
            raise ValueError(
                f"need {self.n_lags} history samples, got {history.size}"
            )
        window = self._to_scaled(history[-self.n_lags:])
        pred = self.fitted_model_.predict(window.reshape(1, -1))
        return float(self._from_scaled(pred)[0])

    def forecast(self, history, steps: int = PAPER_HORIZON) -> np.ndarray:
        """Recursive multi-step forecast (each prediction feeds the window)."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self._check_fitted()
        history = np.asarray(history, dtype=np.float64).ravel()
        if history.size < self.n_lags:
            raise ValueError(
                f"need {self.n_lags} history samples, got {history.size}"
            )
        window = list(self._to_scaled(history[-self.n_lags:]))
        out = []
        for _ in range(steps):
            pred = float(
                self.fitted_model_.predict(np.asarray(window[-self.n_lags:]).reshape(1, -1))[0]
            )
            out.append(pred)
            window.append(pred)
        return self._from_scaled(np.asarray(out))


def evaluate_pipeline(
    series,
    model,
    n_lags: int = PAPER_N_LAGS,
    test_size: float = 0.25,
    scale: bool = True,
) -> EvaluationResult:
    """Run the paper's full evaluation protocol on one series.

    1. proportional time-ordered split (default 75/25),
    2. scaler fit on the training split only,
    3. lag matrices built *within* each split,
    4. RMSE on inverse-transformed test predictions.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    n_test = max(1, int(round(series.size * test_size)))
    n_train = series.size - n_test
    if n_train < n_lags + 2:
        raise ValueError("series too short for the requested split")
    train, test = series[:n_train], series[n_train:]

    if scale:
        scaler = StandardScaler().fit(train.reshape(-1, 1))
        train_s = scaler.transform(train.reshape(-1, 1)).ravel()
        test_s = scaler.transform(test.reshape(-1, 1)).ravel()
    else:
        scaler = None
        train_s, test_s = train, test

    X_train, y_train = make_lag_matrix(train_s, n_lags, horizon=1)
    X_test, y_test = make_lag_matrix(test_s, n_lags, horizon=1)
    fitted = clone(model)
    fitted.fit(X_train, y_train)
    pred_s = fitted.predict(X_test)
    if scaler is not None:
        pred = scaler.inverse_transform(pred_s.reshape(-1, 1)).ravel()
        observed = scaler.inverse_transform(y_test.reshape(-1, 1)).ravel()
    else:
        pred, observed = pred_s, y_test
    return EvaluationResult(
        rmse=root_mean_squared_error(observed, pred),
        predictions=pred,
        observed=observed,
        test_start_index=n_train + n_lags,
    )
