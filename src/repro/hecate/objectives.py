"""Path-selection objectives and the flow-assignment optimizer.

After forecasting each candidate path's QoS, the Optimizer picks a path:
the paper's integrated framework uses *most predicted available
bandwidth* (Sec. V.B: flows get "less congestion points in the future"),
the Fig. 11 experiment uses *minimum latency*, and min-max utilization is
the Sec. III objective.

:func:`assign_flows` is the *joint* optimizer behind the Fig. 12
experiment: given several flows and candidate tunnels, it searches flow->
tunnel assignments and scores each with the max-min fluid model
(:mod:`repro.net.fluid`), maximizing total throughput, then the worst
flow's rate, then minimizing migrations.  Per-flow greedy selection would
herd every flow onto the currently-emptiest tunnel and oscillate; the
joint search reproduces the paper's "one flow to Tunnel 2 and another to
Tunnel 3" outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.net.fluid import FluidFlow, max_min_fair, total_throughput

__all__ = [
    "PathForecast",
    "choose_max_bandwidth",
    "choose_min_latency",
    "choose_min_max_utilization",
    "OBJECTIVES",
    "assign_flows",
    "AssignmentResult",
]


@dataclass(frozen=True)
class PathForecast:
    """Forecasted QoS for one candidate path."""

    name: str
    available_mbps: np.ndarray  # forecast horizon (e.g. next 10 steps)
    latency_ms: float = 0.0
    bottleneck_utilization: float = 0.0

    @property
    def mean_available(self) -> float:
        return float(np.mean(self.available_mbps))


def _check(forecasts: Sequence[PathForecast]) -> None:
    if not forecasts:
        raise ValueError("no candidate paths")
    names = [f.name for f in forecasts]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate path names: {names}")


def choose_max_bandwidth(forecasts: Sequence[PathForecast]) -> PathForecast:
    """The integrated framework's default: most predicted headroom."""
    _check(forecasts)
    return max(forecasts, key=lambda f: f.mean_available)


def choose_min_latency(forecasts: Sequence[PathForecast]) -> PathForecast:
    """Fig. 11's objective: lowest path latency."""
    _check(forecasts)
    return min(forecasts, key=lambda f: f.latency_ms)


def choose_min_max_utilization(forecasts: Sequence[PathForecast]) -> PathForecast:
    """Sec. III's min-max objective on forecast utilization."""
    _check(forecasts)
    return min(forecasts, key=lambda f: f.bottleneck_utilization)


OBJECTIVES: Dict[str, Callable[[Sequence[PathForecast]], PathForecast]] = {
    "max_bandwidth": choose_max_bandwidth,
    "min_latency": choose_min_latency,
    "min_max_utilization": choose_min_max_utilization,
}


@dataclass(frozen=True)
class AssignmentResult:
    """Joint flow->tunnel assignment plus its predicted fluid rates."""

    assignment: Dict[str, str]  # flow name -> tunnel name
    rates: Dict[str, float]  # flow name -> predicted max-min rate (Mbps)
    total_mbps: float
    migrations: int


def assign_flows(
    current: Mapping[str, str],
    tunnel_paths: Mapping[str, Sequence[str]],
    capacities: Mapping[Tuple[str, str], float],
    max_enumerate: int = 6,
) -> AssignmentResult:
    """Jointly assign flows to tunnels (the Fig. 12 optimizer).

    Parameters
    ----------
    current:
        ``{flow_name: tunnel_name}`` — the present assignment (used to
        count migrations and as the greedy fallback's starting point).
    tunnel_paths:
        ``{tunnel_name: router path}`` for every candidate tunnel.
    capacities:
        Per-link capacities in Mbps; lookup tries the directed ``(a, b)``
        key first and falls back to the reversed key (see
        :func:`repro.net.fluid.max_min_fair`), so undirected single-entry
        maps share one budget between both directions while directed maps
        budget each direction separately.
    max_enumerate:
        Exhaustive search up to this many flows (tunnels^flows
        assignments); beyond it, a sequential greedy pass that re-scores
        the fluid model after each flow keeps the cost linear.

    Scoring is lexicographic: total max-min throughput, then the minimum
    per-flow rate, then fewest migrations (ties resolve toward stability).
    """
    flows = sorted(current)
    tunnels = sorted(tunnel_paths)
    if not flows:
        raise ValueError("no flows to assign")
    if not tunnels:
        raise ValueError("no candidate tunnels")
    for tunnel in current.values():
        if tunnel not in tunnel_paths:
            raise KeyError(f"current assignment references unknown tunnel {tunnel!r}")

    def score(assignment: Dict[str, str]):
        fluid = [
            FluidFlow.from_path(f, tunnel_paths[assignment[f]]) for f in flows
        ]
        rates = max_min_fair(fluid, capacities)
        migrations = sum(1 for f in flows if assignment[f] != current[f])
        return (
            total_throughput(rates),
            min(rates.values()),
            -migrations,
        ), rates, migrations

    if len(flows) <= max_enumerate:
        best = None
        for combo in product(tunnels, repeat=len(flows)):
            assignment = dict(zip(flows, combo))
            key, rates, migrations = score(assignment)
            if best is None or key > best[0]:
                best = (key, assignment, rates, migrations)
        _, assignment, rates, migrations = best
    else:
        # greedy: move one flow at a time to its best tunnel, re-scoring
        assignment = dict(current)
        for f in flows:
            best_key, best_tunnel = None, assignment[f]
            for tunnel in tunnels:
                trial = dict(assignment)
                trial[f] = tunnel
                key, _, _ = score(trial)
                if best_key is None or key > best_key:
                    best_key, best_tunnel = key, tunnel
            assignment[f] = best_tunnel
        _, rates, migrations = score(assignment)
    return AssignmentResult(
        assignment=assignment,
        rates=rates,
        total_mbps=total_throughput(rates),
        migrations=migrations,
    )
