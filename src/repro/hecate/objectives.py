"""Path-selection objectives (a pluggable registry) and the optimizer.

After forecasting each candidate path's QoS, the Optimizer picks a path
according to a named *objective*.  The paper's integrated framework uses
*most predicted available bandwidth* (Sec. V.B: flows get "less
congestion points in the future"), the Fig. 11 experiment uses *minimum
latency*, min-max utilization is the Sec. III objective, and ``max_qoe``
scores each path with the requesting flow's application model
(:mod:`repro.net.qoe`) — video, VoIP and bulk each rank the same
forecasts differently.

Objectives live in a registry: :func:`register_objective` adds one,
:func:`objective_names` / :func:`list_objectives` enumerate them (the
CLI derives its ``--objective`` choices and help text from here), and
the ``OBJECTIVES`` mapping keeps the original ``OBJECTIVES[name](...)``
call style working.  A chooser is ``(forecasts, app_class="generic") ->
PathForecast``; app-agnostic objectives simply ignore the class.

:func:`assign_flows` is the *joint* optimizer behind the Fig. 12
experiment: given several flows and candidate tunnels, it searches flow->
tunnel assignments and scores each with the max-min fluid model
(:mod:`repro.net.fluid`), maximizing total throughput, then the worst
flow's rate, then minimizing migrations.  Per-flow greedy selection would
herd every flow onto the currently-emptiest tunnel and oscillate; the
joint search reproduces the paper's "one flow to Tunnel 2 and another to
Tunnel 3" outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
)

import numpy as np

from repro.net.fluid import FluidFlow, max_min_fair, total_throughput
from repro.net.qoe import predicted_mos

__all__ = [
    "PathForecast",
    "ObjectiveSpec",
    "register_objective",
    "get_objective",
    "objective_names",
    "list_objectives",
    "choose_max_bandwidth",
    "choose_min_latency",
    "choose_min_max_utilization",
    "choose_max_qoe",
    "OBJECTIVES",
    "assign_flows",
    "AssignmentResult",
]


@dataclass(frozen=True)
class PathForecast:
    """Forecasted QoS for one candidate path."""

    name: str
    available_mbps: np.ndarray  # forecast horizon (e.g. next 10 steps)
    latency_ms: float = 0.0
    bottleneck_utilization: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0

    @property
    def mean_available(self) -> float:
        return float(np.mean(self.available_mbps))


#: an objective chooser: candidate forecasts (+ the requesting flow's
#: app class) -> the chosen forecast
Chooser = Callable[..., PathForecast]


def _check(forecasts: Sequence[PathForecast]) -> None:
    if not forecasts:
        raise ValueError("no candidate paths")
    names = [f.name for f in forecasts]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate path names: {names}")


def choose_max_bandwidth(
    forecasts: Sequence[PathForecast], app_class: str = "generic"
) -> PathForecast:
    """The integrated framework's default: most predicted headroom."""
    _check(forecasts)
    return max(forecasts, key=lambda f: f.mean_available)


def choose_min_latency(
    forecasts: Sequence[PathForecast], app_class: str = "generic"
) -> PathForecast:
    """Fig. 11's objective: lowest path latency."""
    _check(forecasts)
    return min(forecasts, key=lambda f: f.latency_ms)


def choose_min_max_utilization(
    forecasts: Sequence[PathForecast], app_class: str = "generic"
) -> PathForecast:
    """Sec. III's min-max objective on forecast utilization."""
    _check(forecasts)
    return min(forecasts, key=lambda f: f.bottleneck_utilization)


def choose_max_qoe(
    forecasts: Sequence[PathForecast], app_class: str = "generic"
) -> PathForecast:
    """Application-aware: highest predicted MOS for this app class.

    Each candidate's forecast rate/latency/jitter/loss is scored with
    the requesting flow's QoE model (:func:`repro.net.qoe.predicted_mos`);
    bandwidth breaks MOS ties so ``generic`` flows (flat MOS 3.0)
    degrade to max-bandwidth behaviour.
    """
    _check(forecasts)
    return max(
        forecasts,
        key=lambda f: (
            predicted_mos(
                app_class,
                f.mean_available,
                latency_ms=f.latency_ms,
                jitter_ms=f.jitter_ms,
                loss_rate=f.loss_rate,
            ),
            f.mean_available,
        ),
    )


@dataclass(frozen=True)
class ObjectiveSpec:
    """One registered objective: the name the CLI/PolicySpec use, a
    one-line description for help text, the chooser, and whether the
    chooser reads the flow's app class."""

    name: str
    description: str
    chooser: Chooser
    app_aware: bool = False


_REGISTRY: Dict[str, ObjectiveSpec] = {}


class _ObjectivesView(Mapping[str, Chooser]):
    """Mapping facade over the registry so the historic
    ``OBJECTIVES[name](forecasts)`` call sites keep working."""

    def __getitem__(self, name: str) -> Chooser:
        return _REGISTRY[name].chooser

    def __iter__(self):
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)


OBJECTIVES: Mapping[str, Chooser] = _ObjectivesView()


def register_objective(spec: ObjectiveSpec) -> ObjectiveSpec:
    """Add one objective; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"objective {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_objective(name: str) -> ObjectiveSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; choose from {objective_names()}"
        ) from None


def objective_names() -> Tuple[str, ...]:
    """Registered objective names, sorted (CLI choices come from here)."""
    return tuple(sorted(_REGISTRY))


def list_objectives() -> List[ObjectiveSpec]:
    """All registered objectives, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


register_objective(
    ObjectiveSpec(
        name="max_bandwidth",
        description=(
            "most predicted available bandwidth (the paper's default)"
        ),
        chooser=choose_max_bandwidth,
    )
)
register_objective(
    ObjectiveSpec(
        name="min_latency",
        description="lowest forecast path latency (Fig. 11)",
        chooser=choose_min_latency,
    )
)
register_objective(
    ObjectiveSpec(
        name="min_max_utilization",
        description="lowest forecast bottleneck utilization (Sec. III)",
        chooser=choose_min_max_utilization,
    )
)
register_objective(
    ObjectiveSpec(
        name="max_qoe",
        description=(
            "highest predicted MOS for the flow's app class "
            "(video/voip/bulk models, see docs/QOE.md)"
        ),
        chooser=choose_max_qoe,
        app_aware=True,
    )
)


@dataclass(frozen=True)
class AssignmentResult:
    """Joint flow->tunnel assignment plus its predicted fluid rates."""

    assignment: Dict[str, str]  # flow name -> tunnel name
    rates: Dict[str, float]  # flow name -> predicted max-min rate (Mbps)
    total_mbps: float
    migrations: int


def assign_flows(
    current: Mapping[str, str],
    tunnel_paths: Mapping[str, Sequence[str]],
    capacities: Mapping[Tuple[str, str], float],
    max_enumerate: int = 6,
) -> AssignmentResult:
    """Jointly assign flows to tunnels (the Fig. 12 optimizer).

    Parameters
    ----------
    current:
        ``{flow_name: tunnel_name}`` — the present assignment (used to
        count migrations and as the greedy fallback's starting point).
    tunnel_paths:
        ``{tunnel_name: router path}`` for every candidate tunnel.
    capacities:
        Per-link capacities in Mbps; lookup tries the directed ``(a, b)``
        key first and falls back to the reversed key (see
        :func:`repro.net.fluid.max_min_fair`), so undirected single-entry
        maps share one budget between both directions while directed maps
        budget each direction separately.
    max_enumerate:
        Exhaustive search up to this many flows (tunnels^flows
        assignments); beyond it, a sequential greedy pass that re-scores
        the fluid model after each flow keeps the cost linear.

    Scoring is lexicographic: total max-min throughput, then the minimum
    per-flow rate, then fewest migrations (ties resolve toward stability).
    """
    flows = sorted(current)
    tunnels = sorted(tunnel_paths)
    if not flows:
        raise ValueError("no flows to assign")
    if not tunnels:
        raise ValueError("no candidate tunnels")
    for tunnel in current.values():
        if tunnel not in tunnel_paths:
            raise KeyError(
                f"current assignment references unknown tunnel {tunnel!r}"
            )

    def score(assignment: Dict[str, str]):
        fluid = [
            FluidFlow.from_path(f, tunnel_paths[assignment[f]])
            for f in flows
        ]
        rates = max_min_fair(fluid, capacities)
        migrations = sum(1 for f in flows if assignment[f] != current[f])
        return (
            total_throughput(rates),
            min(rates.values()),
            -migrations,
        ), rates, migrations

    if len(flows) <= max_enumerate:
        best = None
        for combo in product(tunnels, repeat=len(flows)):
            assignment = dict(zip(flows, combo))
            key, rates, migrations = score(assignment)
            if best is None or key > best[0]:
                best = (key, assignment, rates, migrations)
        _, assignment, rates, migrations = best
    else:
        # greedy: move one flow at a time to its best tunnel, re-scoring
        assignment = dict(current)
        for f in flows:
            best_key, best_tunnel = None, assignment[f]
            for tunnel in tunnels:
                trial = dict(assignment)
                trial[f] = tunnel
                key, _, _ = score(trial)
                if best_key is None or key > best_key:
                    best_key, best_tunnel = key, tunnel
            assignment[f] = best_tunnel
        _, rates, migrations = score(assignment)
    return AssignmentResult(
        assignment=assignment,
        rates=rates,
        total_mbps=total_throughput(rates),
        migrations=migrations,
    )
