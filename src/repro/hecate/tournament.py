"""The 18-regressor tournament of Fig. 6.

Each entrant predicts both paths' bandwidth through the paper's pipeline;
the scatter coordinates are (RMSE on WiFi/Path 1, RMSE on LTE/Path 2) and
the integrated model is the one closest to the origin.  GPR is evaluated
in "paper mode": the published GPR numbers (WiFi 34.75, LTE 52.43 —
roughly the RMS of the raw test series) match a pipeline in which the GPR
saw raw-scale data and reverted to its zero prior, so the tournament
reproduces that quirk for R7 (see EXPERIMENTS.md); everything else runs
through the standard scaled pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import WirelessDataset
from repro.ml.registry import REGRESSOR_SPECS, roster
from repro.net.qoe import rate_to_mos

from .predictor import evaluate_pipeline

__all__ = [
    "TournamentEntry",
    "TournamentResult",
    "run_tournament",
    "PAPER_FIG6_RMSE",
]

#: RMSE coordinates (WiFi, LTE) reported in the paper's Fig. 6 legend,
#: plus the GPR values quoted in the text (excluded from the scatter).
PAPER_FIG6_RMSE: Dict[str, Tuple[float, float]] = {
    "R1": (19.29, 6.60),
    "R2": (18.28, 6.62),
    "R3": (18.30, 6.37),
    "R4": (17.54, 8.25),
    "R5": (22.39, 6.60),
    "R6": (13.96, 6.96),
    "R7": (34.75, 52.43),
    "R8": (15.75, 7.32),
    "R9": (19.00, 6.35),
    "R10": (23.46, 7.36),
    "R11": (18.36, 6.50),
    "R12": (19.57, 6.78),
    "R13": (14.23, 6.73),
    "R14": (18.23, 6.49),
    "R15": (17.51, 6.29),
    "R16": (18.82, 6.36),
    "R17": (18.95, 6.36),
    "R18": (16.97, 6.45),
}


@dataclass(frozen=True)
class TournamentEntry:
    """One entrant's scores on both paths."""

    paper_id: str
    label: str
    rmse_wifi: float
    rmse_lte: float

    @property
    def distance_to_origin(self) -> float:
        """The Fig. 6 selection criterion (closest to the lower-left)."""
        return float(np.hypot(self.rmse_wifi, self.rmse_lte))


@dataclass
class TournamentResult:
    entries: List[TournamentEntry]
    excluded: List[str]  # off-scale entrants left out of the scatter

    def ranked(self) -> List[TournamentEntry]:
        return sorted(self.entries, key=lambda e: e.distance_to_origin)

    def best(self) -> TournamentEntry:
        candidates = [e for e in self.entries if e.paper_id not in self.excluded]
        return min(candidates, key=lambda e: e.distance_to_origin)

    def entry(self, paper_id: str) -> TournamentEntry:
        for e in self.entries:
            if e.paper_id == paper_id:
                return e
        raise KeyError(f"no entry {paper_id!r}")

    def scatter_points(self) -> List[Tuple[str, float, float]]:
        """(label, x=WiFi RMSE, y=LTE RMSE) for non-excluded entrants."""
        return [
            (e.label, e.rmse_wifi, e.rmse_lte)
            for e in self.entries
            if e.paper_id not in self.excluded
        ]


def _target_series(
    series: np.ndarray, target: str, app_class: str
) -> np.ndarray:
    """The series an entrant must predict for this target.

    ``bandwidth`` is the paper's raw Mbps trace, returned untouched so
    the default tournament stays byte-identical; ``mos`` maps every
    sample through the ``app_class`` rate-to-QoE curve (see
    :mod:`repro.net.qoe`), turning the tournament into a predicted-MOS
    contest on the same wireless data.
    """
    if target == "bandwidth":
        return series
    if target == "mos":
        rates = np.asarray(series, dtype=np.float64).ravel()
        return np.asarray(
            rate_to_mos(app_class, rates.tolist()), dtype=np.float64
        )
    raise ValueError(
        f"unknown tournament target {target!r} "
        "(expected 'bandwidth' or 'mos')"
    )


def run_tournament(
    dataset: WirelessDataset,
    n_lags: int = 10,
    test_size: float = 0.25,
    entrants: Optional[Sequence[str]] = None,
    gpr_paper_mode: bool = True,
    exclusion_factor: float = 2.2,
    target: str = "bandwidth",
    app_class: str = "video",
) -> TournamentResult:
    """Evaluate the roster on both paths and apply the Fig. 6 exclusion.

    Parameters
    ----------
    entrants:
        Paper ids to run (default: all eighteen).
    gpr_paper_mode:
        Evaluate R7 on the raw (unscaled) pipeline, reproducing the
        published off-scale GPR numbers; set False to run GPR through the
        same scaled pipeline as everyone else.
    exclusion_factor:
        An entrant is excluded from the scatter when its RMSE on either
        path exceeds ``exclusion_factor`` x the median of that path's
        RMSEs (the paper excludes GPR "due to the high RMSE values").
    target:
        ``"bandwidth"`` (the paper's Fig. 6 contest, the default) or
        ``"mos"`` — predict the per-second MOS the ``app_class`` QoE
        model assigns to each bandwidth sample instead of the bandwidth
        itself.  MOS RMSEs live on the 1-5 scale, so they are not
        comparable with :data:`PAPER_FIG6_RMSE`.
    app_class:
        QoE model used when ``target="mos"`` (default ``"video"``, the
        most rate-sensitive ladder).
    """
    ids = list(entrants) if entrants is not None else [s.paper_id for s in roster()]
    entries: List[TournamentEntry] = []
    for paper_id in ids:
        spec = REGRESSOR_SPECS[paper_id]
        scale = not (gpr_paper_mode and paper_id == "R7")
        wifi = evaluate_pipeline(
            _target_series(dataset.path(1), target, app_class),
            spec.factory(), n_lags=n_lags,
            test_size=test_size, scale=scale,
        )
        lte = evaluate_pipeline(
            _target_series(dataset.path(2), target, app_class),
            spec.factory(), n_lags=n_lags,
            test_size=test_size, scale=scale,
        )
        entries.append(
            TournamentEntry(
                paper_id=paper_id,
                label=spec.label,
                rmse_wifi=wifi.rmse,
                rmse_lte=lte.rmse,
            )
        )
    wifi_median = float(np.median([e.rmse_wifi for e in entries]))
    lte_median = float(np.median([e.rmse_lte for e in entries]))
    excluded = [
        e.paper_id
        for e in entries
        if e.rmse_wifi > exclusion_factor * wifi_median
        or e.rmse_lte > exclusion_factor * lte_median
    ]
    return TournamentResult(entries=entries, excluded=excluded)
