"""Classical time-series forecasters (paper Sec. VII future work).

The paper's conclusion names "time series estimation models" as the next
modelling direction; this module provides the standard exponential-
smoothing family — simple exponential smoothing, Holt's linear trend and
additive Holt-Winters — behind a ``fit(series)`` / ``forecast(steps)``
API, plus an adapter exposing them through the same interface as
:class:`repro.hecate.predictor.QoSPredictor` so the framework can swap a
lag-regression model for a state-based forecaster with one argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "SimpleExpSmoothing",
    "HoltLinear",
    "HoltWinters",
    "TimeSeriesQoSPredictor",
]


class _FittedMixin:
    def _check_fitted(self):
        if getattr(self, "_fitted", False) is not True:
            raise RuntimeError(f"{type(self).__name__} is not fitted")


class SimpleExpSmoothing(_FittedMixin):
    """Level-only exponential smoothing: flat forecasts at the last level."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.level_: float = 0.0
        self.fitted_: Optional[np.ndarray] = None
        self._fitted = False

    def fit(self, series) -> "SimpleExpSmoothing":
        s = np.asarray(series, dtype=np.float64).ravel()
        if s.size < 1:
            raise ValueError("series is empty")
        level = s[0]
        fitted = np.empty_like(s)
        for i, x in enumerate(s):
            fitted[i] = level
            level = self.alpha * x + (1 - self.alpha) * level
        self.level_ = float(level)
        self.fitted_ = fitted
        self._fitted = True
        return self

    def forecast(self, steps: int = 1) -> np.ndarray:
        self._check_fitted()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        return np.full(steps, self.level_)


class HoltLinear(_FittedMixin):
    """Holt's double exponential smoothing: level + linear trend."""

    def __init__(self, alpha: float = 0.3, beta: float = 0.1):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.level_: float = 0.0
        self.trend_: float = 0.0
        self._fitted = False

    def fit(self, series) -> "HoltLinear":
        s = np.asarray(series, dtype=np.float64).ravel()
        if s.size < 2:
            raise ValueError("need at least 2 samples for a trend")
        level, trend = s[0], s[1] - s[0]
        for x in s[1:]:
            prev_level = level
            level = self.alpha * x + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
        self.level_ = float(level)
        self.trend_ = float(trend)
        self._fitted = True
        return self

    def forecast(self, steps: int = 1) -> np.ndarray:
        self._check_fitted()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        return self.level_ + self.trend_ * np.arange(1, steps + 1)


class HoltWinters(_FittedMixin):
    """Additive Holt-Winters: level + trend + seasonal component."""

    def __init__(
        self,
        season_length: int,
        alpha: float = 0.3,
        beta: float = 0.05,
        gamma: float = 0.1,
    ):
        if season_length < 2:
            raise ValueError("season_length must be >= 2")
        for name, v in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        self.season_length = int(season_length)
        self.alpha, self.beta, self.gamma = alpha, beta, gamma
        self.level_: float = 0.0
        self.trend_: float = 0.0
        self.seasonal_: Optional[np.ndarray] = None
        self._fitted = False

    def fit(self, series) -> "HoltWinters":
        s = np.asarray(series, dtype=np.float64).ravel()
        m = self.season_length
        if s.size < 2 * m:
            raise ValueError(f"need >= {2 * m} samples for season_length={m}")
        level = s[:m].mean()
        trend = (s[m : 2 * m].mean() - s[:m].mean()) / m
        seasonal = s[:m] - level
        for i in range(m, s.size):
            j = i % m
            prev_level = level
            level = self.alpha * (s[i] - seasonal[j]) + (1 - self.alpha) * (
                level + trend
            )
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
            seasonal[j] = self.gamma * (s[i] - level) + (1 - self.gamma) * seasonal[j]
        self.level_ = float(level)
        self.trend_ = float(trend)
        self.seasonal_ = seasonal
        self._n_seen = s.size
        self._fitted = True
        return self

    def forecast(self, steps: int = 1) -> np.ndarray:
        self._check_fitted()
        if steps < 1:
            raise ValueError("steps must be >= 1")
        m = self.season_length
        out = np.empty(steps)
        for k in range(1, steps + 1):
            out[k - 1] = (
                self.level_
                + self.trend_ * k
                + self.seasonal_[(self._n_seen + k - 1) % m]
            )
        return out


class TimeSeriesQoSPredictor:
    """Adapter: use a smoothing forecaster where a QoSPredictor fits.

    Mirrors :class:`repro.hecate.predictor.QoSPredictor`'s surface
    (``fit(series)``, ``predict_next(history)``, ``forecast(history,
    steps)``) but re-fits the state-space model on the supplied history at
    query time (these models are O(n) to fit, so that's cheap).
    """

    def __init__(self, forecaster_factory=HoltLinear):
        self.forecaster_factory = forecaster_factory
        self._template_ok = hasattr(forecaster_factory(), "fit")

    def fit(self, series) -> "TimeSeriesQoSPredictor":
        self._history = np.asarray(series, dtype=np.float64).ravel()
        return self

    def predict_next(self, history) -> float:
        return float(self.forecast(history, steps=1)[0])

    def forecast(self, history, steps: int = 10) -> np.ndarray:
        model = self.forecaster_factory()
        model.fit(np.asarray(history, dtype=np.float64).ravel())
        return model.forecast(steps)
