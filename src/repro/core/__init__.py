"""repro.core — the public façade of the reproduction.

The paper's primary contribution is the *integration*: an ML optimizer
(Hecate) driving a source-routing data plane (PolKA) through a telemetry
loop.  ``repro.core`` re-exports the pieces a downstream user needs to
stand that loop up in a few lines:

>>> from repro.core import SelfDrivingNetwork, global_p4_lab, fig12_capacities
>>> sdn = SelfDrivingNetwork(global_p4_lab(rates=fig12_capacities()))
>>> sdn.add_tunnel("T1", 1, ["MIA", "SAO", "AMS"])
>>> sdn.add_tunnel("T2", 2, ["MIA", "CHI", "AMS"])
>>> sdn.request_flow(flow_name="f1", src="host1", dst="host2", tos=32,
...                  duration=30.0)
>>> sdn.run(until=40.0)

For whole-suite evaluation rather than a single deployment, use the
declarative scenario layer (also re-exported here):

>>> from repro.core import ScenarioRunner, get_scenario
>>> result = ScenarioRunner(get_scenario("ring-uniform").quick()).run()
"""

from repro.bus import MessageBus
from repro.datasets import generate_uq_wireless
from repro.framework import FlowRequest, SelfDrivingNetwork
from repro.hecate import HecateService, QoSPredictor, run_tournament
from repro.net import Network
from repro.polka import PolkaDomain
from repro.scenarios import (
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    get_scenario,
    list_scenarios,
)
from repro.topologies import (
    TUNNEL1,
    TUNNEL2,
    TUNNEL3,
    fig12_capacities,
    global_p4_lab,
    three_node,
)

__all__ = [
    "SelfDrivingNetwork",
    "FlowRequest",
    "MessageBus",
    "Network",
    "PolkaDomain",
    "HecateService",
    "QoSPredictor",
    "run_tournament",
    "generate_uq_wireless",
    "global_p4_lab",
    "fig12_capacities",
    "three_node",
    "TUNNEL1",
    "TUNNEL2",
    "TUNNEL3",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "get_scenario",
    "list_scenarios",
]
