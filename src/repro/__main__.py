"""``python -m repro <experiment>`` — see :mod:`repro.cli`."""

from repro.cli import main

raise SystemExit(main())
