"""Arithmetic over the polynomial ring GF(2)[t].

PolKA derives its forwarding behaviour from the residue number system over
binary polynomials: every node is labelled with an irreducible polynomial
``s(t)`` and every route carries a single ``routeID`` polynomial whose residue
modulo each node label encodes the output port at that node.  On P4 hardware
this modulo is computed by the CRC engine; here we implement the identical
mathematics directly.

Polynomials are represented as non-negative Python integers where bit ``i``
holds the coefficient of ``t^i``.  For example::

    t^2 + t + 1  ->  0b111  ->  7
    t^4          ->  0b10000 -> 16

This encoding makes addition an XOR, keeps arbitrary degrees exact (Python
ints are unbounded) and matches the on-the-wire bit layout used by PolKA
headers, so a port polynomial ``t`` *is* the port number ``2``.

All functions are pure and allocation-free on the happy path; they are used
both by the routing layer (a handful of ops per packet) and by the scaling
benchmarks (millions of ops), so the hot ones avoid any object churn.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = [
    "deg",
    "add",
    "mul",
    "divmod_",
    "mod",
    "div",
    "mulmod",
    "powmod",
    "gcd",
    "egcd",
    "modinv",
    "is_irreducible",
    "irreducibles",
    "first_irreducibles",
    "poly_to_str",
    "poly_from_str",
    "random_poly",
]


def deg(p: int) -> int:
    """Degree of ``p``; ``deg(0) == -1`` by convention."""
    return p.bit_length() - 1


def add(a: int, b: int) -> int:
    """Addition in GF(2)[t] (coefficient-wise XOR; identical to subtraction)."""
    return a ^ b


def mul(a: int, b: int) -> int:
    """Carry-less product of two polynomials.

    Shift-and-xor over the set bits of the smaller operand; cost is
    ``O(popcount * shift)`` which is exact and fast for the degree ranges
    PolKA uses (node IDs of degree <= ~16, routeIDs up to a few hundred bits).
    """
    if a.bit_length() > b.bit_length():
        a, b = b, a
    result = 0
    while a:
        low = a & -a
        result ^= b << (low.bit_length() - 1)
        a ^= low
    return result


def divmod_(a: int, b: int) -> Tuple[int, int]:
    """Quotient and remainder of polynomial long division ``a = q*b + r``.

    ``deg(r) < deg(b)``.  Raises ``ZeroDivisionError`` for ``b == 0``.
    """
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = deg(b)
    q = 0
    r = a
    dr = deg(r)
    while dr >= db:
        shift = dr - db
        q ^= 1 << shift
        r ^= b << shift
        dr = deg(r)
    return q, r


def mod(a: int, b: int) -> int:
    """Remainder of ``a`` modulo ``b`` — the PolKA per-hop forwarding op."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = deg(b)
    dr = deg(a)
    while dr >= db:
        a ^= b << (dr - db)
        dr = deg(a)
    return a


def div(a: int, b: int) -> int:
    """Quotient of ``a`` divided by ``b``."""
    return divmod_(a, b)[0]


def mulmod(a: int, b: int, m: int) -> int:
    """``(a * b) mod m`` without building the full product's intermediate."""
    return mod(mul(a, b), m)


def powmod(a: int, e: int, m: int) -> int:
    """``a**e mod m`` by square-and-multiply (used by the Rabin test)."""
    if m == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    result = mod(1, m)
    base = mod(a, m)
    while e:
        if e & 1:
            result = mulmod(result, base, m)
        base = mulmod(base, base, m)
        e >>= 1
    return result


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (monic by construction in GF(2)[t])."""
    while b:
        a, b = b, mod(a, b)
    return a


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y = g``."""
    x0, x1 = 1, 0
    y0, y1 = 0, 1
    while b:
        q, r = divmod_(a, b)
        a, b = b, r
        x0, x1 = x1, add(x0, mul(q, x1))
        y0, y1 = y1, add(y0, mul(q, y1))
    return a, x0, y0


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises ``ValueError`` when ``gcd(a, m) != 1`` — in PolKA this signals a
    node-ID assignment bug (labels must be pairwise coprime).
    """
    g, x, _ = egcd(mod(a, m), m)
    if g != 1:
        raise ValueError(
            f"polynomial {poly_to_str(a)} is not invertible modulo {poly_to_str(m)}"
        )
    return mod(x, m)


def _distinct_prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(p: int) -> bool:
    """Rabin irreducibility test for a polynomial over GF(2).

    ``p`` of degree ``n`` is irreducible iff ``t^(2^n) == t (mod p)`` and for
    every prime divisor ``q`` of ``n``, ``gcd(t^(2^(n/q)) - t, p) == 1``.
    Degree-0 polynomials (constants) and 0 are not irreducible.
    """
    n = deg(p)
    if n <= 0:
        return False
    t = 0b10
    if n == 1:
        return True  # t and t+1
    for q in _distinct_prime_factors(n):
        h = add(powmod(t, 1 << (n // q), p), mod(t, p))
        if gcd(h, p) != 1:
            return False
    return powmod(t, 1 << n, p) == mod(t, p)


def irreducibles(degree: int) -> Iterator[int]:
    """Yield every irreducible polynomial of exactly ``degree`` in order."""
    if degree < 1:
        return
    start = 1 << degree
    for p in range(start, start << 1):
        if is_irreducible(p):
            yield p


def first_irreducibles(count: int, min_degree: int = 1) -> List[int]:
    """The ``count`` smallest irreducible polynomials with degree >= ``min_degree``.

    Distinct irreducibles are automatically pairwise coprime, which is what
    PolKA's CRT construction requires of node IDs.
    """
    out: List[int] = []
    degree = max(1, min_degree)
    while len(out) < count:
        for p in irreducibles(degree):
            out.append(p)
            if len(out) == count:
                return out
        degree += 1
    return out


def poly_to_str(p: int) -> str:
    """Render ``p`` like ``t^3 + t + 1`` (``0`` for the zero polynomial)."""
    if p == 0:
        return "0"
    terms = []
    for i in range(deg(p), -1, -1):
        if (p >> i) & 1:
            if i == 0:
                terms.append("1")
            elif i == 1:
                terms.append("t")
            else:
                terms.append(f"t^{i}")
    return " + ".join(terms)


def poly_from_str(s: str) -> int:
    """Parse the output format of :func:`poly_to_str` (whitespace-tolerant)."""
    s = s.strip()
    if s == "0":
        return 0
    p = 0
    for raw in s.split("+"):
        term = raw.strip()
        if term == "1":
            p ^= 1
        elif term == "t":
            p ^= 1 << 1
        elif term.startswith("t^"):
            p ^= 1 << int(term[2:])
        else:
            raise ValueError(f"cannot parse polynomial term {term!r}")
    return p


def random_poly(rng, degree: int) -> int:
    """Uniformly random polynomial of exactly ``degree`` (leading bit forced)."""
    if degree < 0:
        return 0
    low = int(rng.integers(0, 1 << degree)) if degree > 0 else 0
    return (1 << degree) | low
