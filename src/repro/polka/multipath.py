"""mPolKA-style multipath routeIDs (paper Sec. VI, ref. [31]).

The multipath extension lets a single routeID steer a packet out of
*several* ports at once (multicast / multipath telemetry): the residue at a
node is the XOR-superposition of the chosen port polynomials, with each port
contributing one set bit.  A node decodes its residue into the set of output
ports by reading the set bits back out.

This only works when port numbers are assigned one-hot (port ``k`` uses
polynomial ``t^k``), because an arbitrary binary port number could collide
with the XOR of two others.  :class:`MultipathDomain` therefore re-maps the
underlying domain's ports into one-hot port polynomials internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from . import gf2
from .crt import crt as _crt_solve

__all__ = ["MultipathRoute", "MultipathDomain"]


@dataclass(frozen=True)
class MultipathRoute:
    """A routeID whose per-node residues encode *sets* of output ports."""

    route_id: int
    tree: Mapping[str, Tuple[str, ...]]  # node -> successors reached from it


class MultipathDomain:
    """Compile multipath/multicast trees into a single PolKA routeID.

    Parameters
    ----------
    adjacency:
        ``{node: {neighbour: port_number}}`` exactly as for
        :class:`repro.polka.routing.PolkaDomain`; ports are re-encoded
        one-hot internally so each node's residue can superpose them.
    """

    def __init__(self, adjacency: Mapping[str, Mapping[str, int]]) -> None:
        self._onehot: Dict[str, Dict[str, int]] = {}
        max_bits = 1
        for node, ports in adjacency.items():
            table = {}
            for rank, (neighbour, _port) in enumerate(sorted(ports.items())):
                table[neighbour] = rank  # bit index, polynomial t^rank
            self._onehot[node] = table
            if table:
                max_bits = max(max_bits, max(table.values()) + 1)
        # one-hot residues need deg(nodeID) > highest bit index
        polys = gf2.first_irreducibles(len(self._onehot), min_degree=max_bits + 1)
        self.node_ids: Dict[str, int] = dict(zip(sorted(self._onehot), polys))

    def residue_for(self, node: str, successors: Sequence[str]) -> int:
        """XOR-superposed one-hot port polynomial for ``successors``."""
        table = self._onehot[node]
        residue = 0
        for succ in successors:
            try:
                residue |= 1 << table[succ]
            except KeyError:
                raise KeyError(f"node {node} has no port towards {succ}") from None
        return residue

    def decode(self, node: str, residue: int) -> Set[str]:
        """Invert :meth:`residue_for`: residue bits -> neighbour set."""
        table = self._onehot[node]
        by_bit = {bit: neighbour for neighbour, bit in table.items()}
        out: Set[str] = set()
        i = 0
        r = residue
        while r:
            if r & 1:
                if i not in by_bit:
                    raise ValueError(
                        f"residue bit {i} at node {node} does not match any port"
                    )
                out.add(by_bit[i])
            r >>= 1
            i += 1
        return out

    def route_for_tree(self, tree: Mapping[str, Sequence[str]]) -> MultipathRoute:
        """Compile ``{node: successors}`` into one multipath routeID."""
        if not tree:
            raise ValueError("multipath tree is empty")
        residues: List[int] = []
        moduli: List[int] = []
        for node, successors in sorted(tree.items()):
            residues.append(self.residue_for(node, successors))
            moduli.append(self.node_ids[node])
        route_id, _ = _crt_solve(residues, moduli)
        return MultipathRoute(
            route_id=route_id,
            tree={node: tuple(succ) for node, succ in tree.items()},
        )

    def forward(self, node: str, route: MultipathRoute) -> Set[str]:
        """Data plane: mod + one-hot decode -> set of next hops."""
        residue = gf2.mod(route.route_id, self.node_ids[node])
        return self.decode(node, residue)
