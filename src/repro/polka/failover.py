"""Edge-triggered path migration and failure recovery for PolKA tunnels.

PolKA's headline operational property (exercised by Figs. 11 and 12 of the
paper) is that changing a flow's path requires touching *only the ingress
edge node* — the new routeID is stamped there and every core node keeps
forwarding statelessly.  This module precomputes alternate routes per
source/destination pair and answers "give me a working route that avoids
these failed elements" in O(#alternatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .routing import PolkaDomain, Route

__all__ = ["FailoverTable", "MigrationEvent"]


@dataclass(frozen=True)
class MigrationEvent:
    """Record of one edge-level path change (for dashboards/tests)."""

    pair: Tuple[str, str]
    old_path: Optional[Tuple[str, ...]]
    new_path: Tuple[str, ...]
    reason: str


class FailoverTable:
    """Precomputed k-alternate PolKA routes per (src, dst) pair.

    Parameters
    ----------
    domain:
        The PolKA domain used to compile routeIDs.
    graph:
        The physical topology (nodes must match the domain's adjacency).
    k:
        Number of simple paths to precompute per pair (shortest first).
    weight:
        Optional edge attribute used to order paths (e.g. ``"latency_ms"``).
    """

    def __init__(
        self,
        domain: PolkaDomain,
        graph: nx.Graph,
        k: int = 3,
        weight: Optional[str] = None,
    ) -> None:
        self.domain = domain
        self.graph = graph
        self.k = int(k)
        self.weight = weight
        if self.k < 1:
            raise ValueError("k must be >= 1")
        self._routes: Dict[Tuple[str, str], List[Route]] = {}
        self._active: Dict[Tuple[str, str], Route] = {}
        self.history: List[MigrationEvent] = []

    def _compute(self, src: str, dst: str) -> List[Route]:
        paths = islice(
            nx.shortest_simple_paths(self.graph, src, dst, weight=self.weight),
            self.k,
        )
        routes = [self.domain.route_for_path(p) for p in paths]
        if not routes:
            raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
        return routes

    def alternatives(self, src: str, dst: str) -> List[Route]:
        """All precomputed routes for the pair (computing them on first use)."""
        key = (src, dst)
        if key not in self._routes:
            self._routes[key] = self._compute(src, dst)
        return list(self._routes[key])

    def active(self, src: str, dst: str) -> Route:
        """Currently selected route (defaults to the best alternative)."""
        key = (src, dst)
        if key not in self._active:
            self._active[key] = self.alternatives(src, dst)[0]
        return self._active[key]

    @staticmethod
    def _avoids(route: Route, failed_nodes: Set[str], failed_links: Set[frozenset]) -> bool:
        if any(n in failed_nodes for n in route.path):
            return False
        for a, b in zip(route.path[:-1], route.path[1:]):
            if frozenset((a, b)) in failed_links:
                return False
        return True

    def recover(
        self,
        src: str,
        dst: str,
        failed_nodes: Iterable[str] = (),
        failed_links: Iterable[Tuple[str, str]] = (),
    ) -> Route:
        """Switch the pair to the best precomputed route avoiding failures.

        Only the ingress edge state changes (the returned route's ID is
        simply stamped on new packets).  Raises ``nx.NetworkXNoPath`` when
        no precomputed alternative survives the failure set.
        """
        nodes = set(failed_nodes)
        links = {frozenset(l) for l in failed_links}
        key = (src, dst)
        old = self._active.get(key)
        for route in self.alternatives(src, dst):
            if self._avoids(route, nodes, links):
                if old is None or route.path != old.path:
                    self.history.append(
                        MigrationEvent(
                            pair=key,
                            old_path=old.path if old else None,
                            new_path=route.path,
                            reason=f"failover(nodes={sorted(nodes)}, links={sorted(map(tuple, links))})",
                        )
                    )
                self._active[key] = route
                return route
        raise nx.NetworkXNoPath(
            f"no surviving precomputed path {src} -> {dst} avoiding {sorted(nodes)}"
        )

    def migrate(self, src: str, dst: str, path: Sequence[str], reason: str = "optimizer") -> Route:
        """Explicitly steer the pair onto ``path`` (optimizer decision).

        Compiles the routeID if the path was not among the precomputed
        alternatives; records a :class:`MigrationEvent` either way.
        """
        key = (src, dst)
        target = tuple(path)
        route = next(
            (r for r in self.alternatives(src, dst) if r.path == target), None
        )
        if route is None:
            route = self.domain.route_for_path(target)
            self._routes[key].append(route)
        old = self._active.get(key)
        if old is None or old.path != route.path:
            self.history.append(
                MigrationEvent(
                    pair=key,
                    old_path=old.path if old else None,
                    new_path=route.path,
                    reason=reason,
                )
            )
        self._active[key] = route
        return route
