"""PolKA: Polynomial Key-based Architecture for source routing.

Reimplementation of the source-routing substrate the paper integrates with
Hecate.  Node identifiers are irreducible polynomials over GF(2); a path is
compiled (via the polynomial Chinese Remainder Theorem) into a single
``routeID`` carried unmodified in the packet header, and each core node
derives its output port with one polynomial ``mod`` — the operation P4
switches execute on their CRC engines.

Public API
----------
- :mod:`repro.polka.gf2` — GF(2)[t] arithmetic (ints as bit-vectors).
- :func:`repro.polka.crt.crt` — polynomial CRT.
- :class:`repro.polka.routing.PolkaDomain` — node-ID assignment + route
  compilation + stateless forwarding walk.
- :class:`repro.polka.routing.PortSwitchingRoute` — pop-per-hop baseline.
- :class:`repro.polka.multipath.MultipathDomain` — mPolKA-style trees.
- :class:`repro.polka.failover.FailoverTable` — edge-triggered migration.
"""

from . import gf2
from .crt import crt, pairwise_coprime, verify_crt
from .failover import FailoverTable, MigrationEvent
from .multipath import MultipathDomain, MultipathRoute
from .pot import PotAuthority, TransitProof
from .routing import PolkaDomain, PolkaNode, PortSwitchingRoute, Route, assign_node_ids

__all__ = [
    "gf2",
    "crt",
    "pairwise_coprime",
    "verify_crt",
    "PolkaDomain",
    "PolkaNode",
    "PortSwitchingRoute",
    "Route",
    "assign_node_ids",
    "MultipathDomain",
    "MultipathRoute",
    "FailoverTable",
    "MigrationEvent",
    "PotAuthority",
    "TransitProof",
]
