"""Chinese Remainder Theorem over GF(2)[t].

This is the controller-side half of PolKA: given the desired output-port
polynomial (the residue) at each node along a path and the nodes' polynomial
identifiers (the moduli), the CRT produces the single ``routeID`` polynomial
embedded in the packet header.  Core nodes then recover their port with one
``mod`` — see :mod:`repro.polka.gf2`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from . import gf2

__all__ = ["crt", "verify_crt", "pairwise_coprime"]


def pairwise_coprime(moduli: Sequence[int]) -> bool:
    """True when every pair of moduli has polynomial gcd 1.

    Quadratic in the path length, which is fine: PolKA paths are tens of
    hops, and this is a controller-side sanity check, not a data-plane op.
    """
    for i in range(len(moduli)):
        for j in range(i + 1, len(moduli)):
            if gf2.gcd(moduli[i], moduli[j]) != 1:
                return False
    return True


def crt(residues: Sequence[int], moduli: Sequence[int]) -> Tuple[int, int]:
    """Solve ``x = residues[i]  (mod moduli[i])`` for all ``i``.

    Returns ``(x, M)`` where ``M`` is the product of the moduli and ``x`` is
    the unique solution with ``deg(x) < deg(M)``.

    Raises
    ------
    ValueError
        If the input lengths differ, a modulus is constant (degree < 1), a
        residue does not satisfy ``deg(r) < deg(m)``, or the moduli are not
        pairwise coprime (surfaced through a non-invertible partial product).
    """
    if len(residues) != len(moduli):
        raise ValueError(
            f"got {len(residues)} residues but {len(moduli)} moduli"
        )
    if not moduli:
        raise ValueError("CRT needs at least one (residue, modulus) pair")
    for r, m in zip(residues, moduli):
        if gf2.deg(m) < 1:
            raise ValueError(
                f"modulus {gf2.poly_to_str(m)} is constant; node IDs must have degree >= 1"
            )
        if gf2.deg(r) >= gf2.deg(m):
            raise ValueError(
                f"residue {gf2.poly_to_str(r)} does not fit modulus {gf2.poly_to_str(m)}"
            )

    big = 1
    for m in moduli:
        big = gf2.mul(big, m)

    x = 0
    for r, m in zip(residues, moduli):
        if r == 0:
            continue
        n_i = gf2.div(big, m)
        try:
            inv = gf2.modinv(n_i, m)
        except ValueError as exc:
            raise ValueError(
                "CRT moduli are not pairwise coprime; PolKA node IDs must be "
                "distinct irreducible polynomials"
            ) from exc
        x = gf2.add(x, gf2.mul(gf2.mul(r, n_i), inv))
    return gf2.mod(x, big), big


def verify_crt(x: int, residues: Sequence[int], moduli: Sequence[int]) -> bool:
    """Check that ``x`` reduces to every expected residue (data-plane view)."""
    return all(gf2.mod(x, m) == r for r, m in zip(residues, moduli))
