"""PolKA source routing: node identifiers, routeIDs and stateless forwarding.

The controller assigns each core node an irreducible polynomial ``nodeID``
and numbers each node's ports; a path is compiled into a single ``routeID``
via the polynomial CRT (:mod:`repro.polka.crt`).  A core node forwards by
computing ``routeID mod nodeID`` — no per-flow or per-route state, and the
header is never rewritten in flight.  A conventional port-switching source
route (the baseline PolKA is compared against in Sec. II.B of the paper) is
provided for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from . import gf2
from .crt import crt as _crt_solve
from .crt import pairwise_coprime

__all__ = [
    "PolkaNode",
    "Route",
    "PortSwitchingRoute",
    "PolkaDomain",
    "assign_node_ids",
]


def assign_node_ids(names: Sequence[str], max_port: int) -> Dict[str, int]:
    """Assign distinct irreducible polynomial IDs to ``names``.

    The residue at a node is the output-port polynomial, so the node ID's
    degree must exceed the bit-length of the largest port number:
    ``deg(nodeID) > deg(port)`` i.e. ``2**deg(nodeID) > max_port``.

    Distinct irreducibles are pairwise coprime, satisfying the CRT
    precondition by construction.
    """
    if max_port < 0:
        raise ValueError("max_port must be non-negative")
    min_degree = max(1, int(max_port).bit_length())
    polys = gf2.first_irreducibles(len(names), min_degree=min_degree)
    return dict(zip(names, polys))


@dataclass(frozen=True)
class PolkaNode:
    """A PolKA core node: an irreducible ``node_id`` plus numbered ports.

    ``ports`` maps a neighbour name to the local output-port number; the
    port's polynomial representation is simply its number (bit ``i`` of the
    port number is the coefficient of ``t^i``), matching the paper's
    examples where port label 2 corresponds to the polynomial ``t``.
    """

    name: str
    node_id: int
    ports: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not gf2.is_irreducible(self.node_id):
            raise ValueError(
                f"node {self.name}: id {gf2.poly_to_str(self.node_id)} is not irreducible"
            )
        limit = 1 << gf2.deg(self.node_id)
        for neighbour, port in self.ports.items():
            if not 0 <= port < limit:
                raise ValueError(
                    f"node {self.name}: port {port} towards {neighbour} does not fit "
                    f"node id of degree {gf2.deg(self.node_id)} (max {limit - 1})"
                )

    def port_to(self, neighbour: str) -> int:
        try:
            return self.ports[neighbour]
        except KeyError:
            raise KeyError(f"node {self.name} has no port towards {neighbour}") from None

    def forward(self, route_id: int) -> int:
        """Data-plane op: output port = ``route_id mod node_id``.

        One polynomial remainder — the operation P4 hardware implements by
        reusing its CRC engine.
        """
        return gf2.mod(route_id, self.node_id)


@dataclass(frozen=True)
class Route:
    """A compiled PolKA route.

    Attributes
    ----------
    path:
        Node names edge-to-edge, e.g. ``("MIA", "SAO", "AMS")``.  The first
        and last entries are edge nodes; ``core`` nodes between them forward
        by residue.
    route_id:
        The CRT-combined polynomial carried in the packet header.
    moduli:
        The core-node IDs the routeID was built against (for verification).
    """

    path: Tuple[str, ...]
    route_id: int
    moduli: Tuple[int, ...]

    @property
    def header_bits(self) -> int:
        """Bits needed to carry the routeID (PolKA's header cost metric)."""
        return max(1, self.route_id.bit_length())

    def __len__(self) -> int:
        return len(self.path)


@dataclass
class PortSwitchingRoute:
    """Baseline source route: an explicit list of output ports.

    Each hop pops the head of the list, *rewriting the header in flight*
    (the cost PolKA eliminates).  ``rewrites`` counts those mutations so the
    ablation bench can report header-rewrites-per-packet: PolKA = 0,
    port switching = path length.
    """

    ports: List[int]
    rewrites: int = 0

    @property
    def header_bits(self) -> int:
        return sum(max(1, p.bit_length()) for p in self.ports)

    def forward(self) -> int:
        """Pop and return the next output port (mutates the header)."""
        if not self.ports:
            raise IndexError("port-switching route exhausted")
        self.rewrites += 1
        return self.ports.pop(0)


class PolkaDomain:
    """Controller-side view of a PolKA routing domain.

    Owns the node-ID assignment for a set of core nodes and compiles paths
    into :class:`Route` objects.  ``adjacency`` maps each node name to its
    ``{neighbour: port_number}`` table; edge nodes that only originate or
    terminate tunnels may appear solely as neighbours.
    """

    def __init__(
        self,
        adjacency: Mapping[str, Mapping[str, int]],
        node_ids: Optional[Mapping[str, int]] = None,
    ) -> None:
        self._adjacency: Dict[str, Dict[str, int]] = {
            name: dict(ports) for name, ports in adjacency.items()
        }
        max_port = 0
        for ports in self._adjacency.values():
            if ports:
                max_port = max(max_port, max(ports.values()))
        if node_ids is None:
            node_ids = assign_node_ids(sorted(self._adjacency), max_port)
        ids = dict(node_ids)
        if not pairwise_coprime(list(ids.values())):
            raise ValueError("PolKA node IDs must be pairwise coprime")
        self.nodes: Dict[str, PolkaNode] = {
            name: PolkaNode(name=name, node_id=ids[name], ports=self._adjacency[name])
            for name in self._adjacency
        }

    def node(self, name: str) -> PolkaNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown PolKA node {name!r}") from None

    def core_segment(self, path: Sequence[str]) -> Tuple[str, ...]:
        """The nodes of ``path`` that forward by residue (all but the last).

        The final node delivers locally, so it contributes no residue; every
        earlier node must be a managed core/edge node with a port towards
        its successor.
        """
        return tuple(path[:-1])

    def route_for_path(self, path: Sequence[str]) -> Route:
        """Compile a node path into a PolKA :class:`Route`.

        Raises ``KeyError`` if a hop is unknown or unconnected and
        ``ValueError`` for degenerate paths.
        """
        if len(path) < 2:
            raise ValueError(f"path {path!r} is too short to route")
        residues: List[int] = []
        moduli: List[int] = []
        for here, nxt in zip(path[:-1], path[1:]):
            node = self.node(here)
            residues.append(node.port_to(nxt))
            moduli.append(node.node_id)
        route_id, _ = _crt_solve(residues, moduli)
        return Route(path=tuple(path), route_id=route_id, moduli=tuple(moduli))

    def port_switching_route(self, path: Sequence[str]) -> PortSwitchingRoute:
        """Compile the same path as a pop-per-hop port list (baseline)."""
        if len(path) < 2:
            raise ValueError(f"path {path!r} is too short to route")
        ports = [self.node(h).port_to(n) for h, n in zip(path[:-1], path[1:])]
        return PortSwitchingRoute(ports=ports)

    def walk(self, route: Route) -> List[Tuple[str, int]]:
        """Replay a route hop-by-hop, returning ``(node, port)`` decisions.

        This is the data-plane simulation: each node computes its own mod of
        the *unchanged* routeID.  Used heavily by tests to prove that the
        compiled routeID reproduces the intended path.
        """
        decisions = []
        for here, nxt in zip(route.path[:-1], route.path[1:]):
            node = self.node(here)
            port = node.forward(route.route_id)
            decisions.append((here, port))
            if port != node.port_to(nxt):
                raise AssertionError(
                    f"routeID walk diverged at {here}: got port {port}, "
                    f"expected {node.port_to(nxt)} towards {nxt}"
                )
        return decisions
