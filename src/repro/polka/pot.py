"""Proof-of-Transit for PolKA paths (PoT-PolKA, paper ref. [18]).

The paper's reference [18] ("PoT-PolKA: let the edge control the
proof-of-transit in path-aware networks") extends PolKA so the egress
edge can *verify* that a packet actually traversed the programmed path.
We implement the same edge-controlled scheme in miniature:

* the controller provisions each core node with a secret polynomial
  ``k_i`` (degree < deg(nodeID));
* each node, when forwarding a packet carrying nonce ``w``, folds its
  mark into a running transit tag:
  ``tag <- tag XOR ((w * k_i) mod s_i)``;
* the egress recomputes the expected tag for the programmed path (it
  knows all secrets) and rejects on mismatch.

A node skipped, replayed or visited out of programmed order (set
semantics: skipped/duplicated) changes the tag; random forgery succeeds
with probability ~2^-deg(s_i) per mark.  Exercised by failure-injection
tests in ``tests/polka/test_pot.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from . import gf2
from .routing import PolkaDomain, Route

__all__ = ["TransitProof", "PotAuthority"]


@dataclass
class TransitProof:
    """Mutable in-packet proof state: nonce + accumulated tag."""

    nonce: int
    tag: int = 0

    def fold(self, mark: int) -> None:
        self.tag ^= mark


class PotAuthority:
    """Edge-controlled proof-of-transit over a PolKA domain.

    The authority (conceptually the controller + egress edge) owns the
    per-node secrets; core nodes only know their own secret and apply
    :meth:`node_mark` while forwarding.
    """

    def __init__(self, domain: PolkaDomain, seed: int = 0):
        self.domain = domain
        rng = np.random.default_rng(seed)
        self.secrets: Dict[str, int] = {}
        for name, node in domain.nodes.items():
            degree = gf2.deg(node.node_id)
            # non-zero secret of degree < deg(nodeID)
            secret = 0
            while secret == 0:
                secret = int(rng.integers(1, 1 << degree))
            self.secrets[name] = secret

    def new_proof(self, rng_or_nonce) -> TransitProof:
        """Create the in-packet proof (ingress edge)."""
        if isinstance(rng_or_nonce, (int, np.integer)):
            nonce = int(rng_or_nonce)
        else:
            nonce = int(rng_or_nonce.integers(1, 1 << 30))
        if nonce < 1:
            raise ValueError("nonce must be positive")
        return TransitProof(nonce=nonce)

    def node_mark(self, node_name: str, nonce: int) -> int:
        """The mark node ``node_name`` folds in while forwarding."""
        node = self.domain.node(node_name)
        secret = self.secrets[node_name]
        return gf2.mulmod(gf2.mod(nonce, node.node_id), secret, node.node_id)

    def stamp(self, node_name: str, proof: TransitProof) -> None:
        """Data-plane action at a core node."""
        proof.fold(self.node_mark(node_name, proof.nonce))

    def expected_tag(self, path: Sequence[str], nonce: int) -> int:
        """Egress-side recomputation over the transit nodes of ``path``.

        The transit set is every hop except the final one (which verifies
        rather than forwards), matching
        :meth:`repro.polka.routing.PolkaDomain.walk` semantics.
        """
        tag = 0
        for node_name in path[:-1]:
            tag ^= self.node_mark(node_name, nonce)
        return tag

    def verify(self, route: Route, proof: TransitProof) -> bool:
        """Egress check: did the packet visit exactly the programmed nodes?"""
        return proof.tag == self.expected_tag(route.path, proof.nonce)

    def walk_with_proof(
        self,
        route: Route,
        nonce: int,
        skip: Iterable[str] = (),
        extra: Iterable[str] = (),
    ) -> Tuple[TransitProof, bool]:
        """Simulate forwarding with optional misbehaviour.

        ``skip`` nodes forward without stamping (a bypassed waypoint);
        ``extra`` nodes stamp additionally (an unexpected detour).
        Returns the final proof and the egress verdict.
        """
        skip = set(skip)
        proof = self.new_proof(nonce)
        for node_name in route.path[:-1]:
            if node_name not in skip:
                self.stamp(node_name, proof)
        for node_name in extra:
            self.stamp(node_name, proof)
        return proof, self.verify(route, proof)
