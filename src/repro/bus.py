"""In-process message queue.

The paper's framework components (Dashboard, Scheduler, Controller,
Telemetry, Hecate, PolKA services — Fig. 3) talk over a message-queue
system; router reconfiguration requests in particular travel as queue
messages that a service applies to freeRtr (Sec. V.C.1).  This module is
the deterministic, dependency-free stand-in: topic-based publish/
subscribe with synchronous delivery and a full audit log.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, MutableSequence, Optional

__all__ = ["Message", "MessageBus"]


@dataclass(frozen=True)
class Message:
    """One bus message: topic, payload dict, monotonic id."""

    topic: str
    payload: Dict[str, Any]
    msg_id: int
    reply_to: Optional[str] = None


class MessageBus:
    """Topic-based pub/sub with synchronous, ordered delivery.

    Handlers run inline at :meth:`publish` time in subscription order —
    deterministic by construction, which keeps simulation runs and tests
    reproducible.  Every message is appended to :attr:`log` so experiments
    can audit the exact control-plane conversation (the sequence of
    Fig. 4).

    ``log_limit`` bounds the audit log to the most recent N messages
    (a deque).  Finite scenarios keep the default unbounded list, but a
    long-lived service (see :mod:`repro.framework.service_mode`) placing
    hundreds of placements per second would otherwise retain every
    control message ever exchanged — the log must be a window, not a
    leak.  Message ids keep counting monotonically either way.
    """

    def __init__(self, log_limit: Optional[int] = None) -> None:
        if log_limit is not None and log_limit < 1:
            raise ValueError(f"log_limit must be >= 1, got {log_limit}")
        self._subscribers: Dict[str, List[Callable[[Message], None]]] = {}
        self._ids = itertools.count()
        self.log_limit = log_limit
        self.log: MutableSequence[Message] = (
            [] if log_limit is None else deque(maxlen=log_limit)
        )

    def subscribe(self, topic: str, handler: Callable[[Message], None]) -> None:
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Callable[[Message], None]) -> None:
        try:
            self._subscribers.get(topic, []).remove(handler)
        except ValueError:
            raise KeyError(f"handler not subscribed to {topic!r}") from None

    def publish(self, topic: str, reply_to: Optional[str] = None, **payload: Any) -> Message:
        message = Message(
            topic=topic, payload=dict(payload), msg_id=next(self._ids),
            reply_to=reply_to,
        )
        self.log.append(message)
        for handler in list(self._subscribers.get(topic, [])):
            handler(message)
        return message

    def request(self, topic: str, **payload: Any) -> List[Any]:
        """Publish and collect handler return values (simple RPC).

        Handlers that return ``None`` contribute nothing; others are
        gathered in subscription order.
        """
        message = Message(topic=topic, payload=dict(payload), msg_id=next(self._ids))
        self.log.append(message)
        replies = []
        for handler in list(self._subscribers.get(topic, [])):
            result = handler(message)
            if result is not None:
                replies.append(result)
        return replies

    def topics(self) -> List[str]:
        return sorted(self._subscribers)

    def history(self, topic: Optional[str] = None) -> List[Message]:
        if topic is None:
            return list(self.log)
        return [m for m in self.log if m.topic == topic]
