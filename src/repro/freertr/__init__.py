"""repro.freertr — the RARE/freeRtr configuration surface.

Reproduces the control-plane config layer the paper drives PolKA through:
access-lists (Fig. 10's flow filters), PolKA tunnel interfaces with
explicit ``domain-name`` paths, policy-based routing that binds flows to
tunnels, and a message-queue service that applies reconfiguration
commands at runtime.
"""

from .acl import AccessList, AclRule, PROTO_NUMBERS, ip_to_int, mask_to_prefix_len, parse_prefix
from .config import ConfigError, FreeRtrConfig, apply_config, parse_config
from .service import RECONFIG_TOPIC, RouterConfigService
from .tunnel import EdgePolicy, PbrEntry, PolkaTunnel

__all__ = [
    "AccessList", "AclRule", "PROTO_NUMBERS",
    "ip_to_int", "mask_to_prefix_len", "parse_prefix",
    "ConfigError", "FreeRtrConfig", "parse_config", "apply_config",
    "RouterConfigService", "RECONFIG_TOPIC",
    "EdgePolicy", "PbrEntry", "PolkaTunnel",
]
