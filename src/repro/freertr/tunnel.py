"""PolKA tunnels and policy-based routing on edge routers.

A tunnel pins an explicit router path ("``tunnel domain-name``" in the
Fig. 10 config); freeRtr converts that path into a PolKA routeID which the
ingress edge stamps on matching packets.  PBR binds an access-list to a
tunnel — and re-pointing one PBR entry is the *only* state change needed
to migrate traffic (the property Figs. 11-12 demonstrate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.packets import Packet
from repro.net.topology import Network
from repro.polka.routing import Route

from .acl import AccessList

__all__ = ["PolkaTunnel", "PbrEntry", "EdgePolicy"]


@dataclass
class PolkaTunnel:
    """A configured unidirectional PolKA tunnel.

    Attributes
    ----------
    tunnel_id:
        Numeric id (``interface tunnel3`` -> 3).
    path:
        Explicit router path, ingress edge first, egress edge last.
    route:
        Compiled PolKA route (routeID + moduli).
    """

    tunnel_id: int
    path: Tuple[str, ...]
    route: Route

    @property
    def ingress(self) -> str:
        return self.path[0]

    @property
    def egress(self) -> str:
        return self.path[-1]

    def describe(self) -> str:
        hops = " ".join(self.path)
        return (
            f"interface tunnel{self.tunnel_id}\n"
            f" tunnel domain-name {hops}\n"
            f" tunnel destination {self.egress}\n"
            f" tunnel mode polka (routeID=0b{self.route.route_id:b}, "
            f"{self.route.header_bits} bits)"
        )


@dataclass
class PbrEntry:
    """One policy-based-routing binding: ACL name -> tunnel id."""

    acl: str
    tunnel_id: int
    hits: int = 0


class EdgePolicy:
    """The PBR classifier installed on one edge router.

    Evaluates entries in order; the first whose access-list permits the
    packet selects the tunnel.  Exposed to the router as the
    ``classifier`` callable returning ``(route_id, egress)``.
    """

    def __init__(self, router_name: str):
        self.router_name = router_name
        self.access_lists: Dict[str, AccessList] = {}
        self.tunnels: Dict[int, PolkaTunnel] = {}
        self.entries: List[PbrEntry] = []
        self.reconfigurations: int = 0

    # -------------------------------------------------------------- config

    def add_access_list(self, acl: AccessList) -> None:
        self.access_lists[acl.name] = acl

    def remove_access_list(self, name: str) -> None:
        """Delete an access-list that no PBR entry references.

        Requires the caller to :meth:`unbind` first — deleting an ACL
        out from under a live PBR entry would silently stop classifying
        its flow, so that is an error rather than a cascade."""
        if name not in self.access_lists:
            raise KeyError(f"unknown access-list {name!r}")
        if any(entry.acl == name for entry in self.entries):
            raise ValueError(
                f"access-list {name!r} is still referenced by a PBR entry; "
                "unbind it first"
            )
        del self.access_lists[name]
        self.reconfigurations += 1

    def add_tunnel(self, tunnel: PolkaTunnel) -> None:
        if tunnel.ingress != self.router_name:
            raise ValueError(
                f"tunnel {tunnel.tunnel_id} ingress {tunnel.ingress} is not "
                f"router {self.router_name}"
            )
        self.tunnels[tunnel.tunnel_id] = tunnel

    def bind(self, acl_name: str, tunnel_id: int) -> None:
        """Install (or re-point) the PBR entry for ``acl_name``.

        Re-pointing an existing entry is the paper's one-touch migration:
        a single PBR change at the ingress edge moves the flow.
        """
        if acl_name not in self.access_lists:
            raise KeyError(f"unknown access-list {acl_name!r}")
        if tunnel_id not in self.tunnels:
            raise KeyError(f"unknown tunnel {tunnel_id}")
        for entry in self.entries:
            if entry.acl == acl_name:
                if entry.tunnel_id != tunnel_id:
                    entry.tunnel_id = tunnel_id
                    self.reconfigurations += 1
                return
        self.entries.append(PbrEntry(acl=acl_name, tunnel_id=tunnel_id))
        self.reconfigurations += 1

    def unbind(self, acl_name: str) -> None:
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.acl != acl_name]
        if len(self.entries) == before:
            raise KeyError(f"no PBR entry for access-list {acl_name!r}")
        self.reconfigurations += 1

    def binding_of(self, acl_name: str) -> Optional[int]:
        for entry in self.entries:
            if entry.acl == acl_name:
                return entry.tunnel_id
        return None

    # ------------------------------------------------------------ classify

    def classify(self, packet: Packet) -> Optional[Tuple[int, str]]:
        for entry in self.entries:
            acl = self.access_lists.get(entry.acl)
            if acl is not None and acl.permits(packet):
                entry.hits += 1
                tunnel = self.tunnels[entry.tunnel_id]
                return tunnel.route.route_id, tunnel.egress
        return None

    def install_on(self, network: Network) -> None:
        """Attach this policy as the router's classifier."""
        network.routers[self.router_name].classifier = self.classify

    def describe(self) -> str:
        lines = [f"! edge policy on {self.router_name}"]
        for acl in self.access_lists.values():
            lines.append(acl.describe())
        for tunnel in sorted(self.tunnels.values(), key=lambda t: t.tunnel_id):
            lines.append(tunnel.describe())
        for entry in self.entries:
            lines.append(f"pbr match {entry.acl} set tunnel {entry.tunnel_id}")
        return "\n".join(lines)
