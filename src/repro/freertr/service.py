"""Message-queue driven router reconfiguration (paper Sec. V.C.1).

    "Using this framework, we manage FreeRtr configurations by sending
    messages through a Message Queue to reconfigure the router.  A service
    receives these messages, applies the necessary commands [...]"

:class:`RouterConfigService` subscribes to the ``freertr.reconfig`` topic
on the shared :class:`repro.bus.MessageBus`; supported commands:

``apply_config``   full config text for an edge router (replaces policy),
``add_acl``        add one access-list to an existing policy,
``remove_acl``     delete an unbound access-list (flow teardown),
``create_tunnel``  add one tunnel (explicit path) to an existing policy,
``bind_pbr``       point an access-list at a tunnel (the one-touch
                   migration primitive of Figs. 11-12),
``unbind_pbr``     remove a binding.

Each handled message returns an ``{"ok": bool, ...}`` dict through
``MessageBus.request``.
"""

from __future__ import annotations

from typing import Dict

from repro.bus import Message, MessageBus
from repro.net.topology import Network

from .config import ConfigError, apply_config, parse_config
from .tunnel import EdgePolicy, PolkaTunnel

__all__ = ["RouterConfigService", "RECONFIG_TOPIC"]

RECONFIG_TOPIC = "freertr.reconfig"


class RouterConfigService:
    """Applies queue-delivered configuration commands to edge routers."""

    def __init__(self, network: Network, bus: MessageBus):
        self.network = network
        self.bus = bus
        self.policies: Dict[str, EdgePolicy] = {}
        self.applied: int = 0
        self.failed: int = 0
        bus.subscribe(RECONFIG_TOPIC, self._on_message)

    def policy(self, router_name: str) -> EdgePolicy:
        try:
            return self.policies[router_name]
        except KeyError:
            raise KeyError(
                f"no policy installed on {router_name!r}; send apply_config first"
            ) from None

    # ------------------------------------------------------------ handlers

    def _on_message(self, message: Message) -> Dict:
        payload = message.payload
        command = payload.get("command")
        try:
            if command == "apply_config":
                return self._apply_config(payload)
            if command == "add_acl":
                return self._add_acl(payload)
            if command == "remove_acl":
                return self._remove_acl(payload)
            if command == "create_tunnel":
                return self._create_tunnel(payload)
            if command == "bind_pbr":
                return self._bind_pbr(payload)
            if command == "unbind_pbr":
                return self._unbind_pbr(payload)
            raise ConfigError(f"unknown command {command!r}")
        except (ConfigError, KeyError, ValueError) as exc:
            self.failed += 1
            return {"ok": False, "error": str(exc), "command": command}

    def _apply_config(self, payload: Dict) -> Dict:
        router = payload["router"]
        config = parse_config(payload["text"])
        policy = apply_config(
            self.network, router, config, router_ips=payload.get("router_ips")
        )
        self.policies[router] = policy
        self.applied += 1
        return {
            "ok": True,
            "router": router,
            "tunnels": sorted(policy.tunnels),
            "pbr_entries": len(policy.entries),
        }

    def _add_acl(self, payload: Dict) -> Dict:
        """Add one access-list incrementally (used by the Controller to
        register per-flow classifiers without rewriting the config)."""
        from .acl import AccessList, AclRule

        router = payload["router"]
        name = payload["name"]
        rules = payload["rules"]  # list of rule strings
        policy = self.policies.setdefault(router, EdgePolicy(router))
        acl = AccessList(name)
        for rule_text in rules:
            acl.add(AclRule.parse(rule_text.split()))
        policy.add_access_list(acl)
        policy.install_on(self.network)
        self.applied += 1
        return {"ok": True, "router": router, "acl": name, "rules": len(acl.rules)}

    def _remove_acl(self, payload: Dict) -> Dict:
        """Delete one access-list (the Controller's flow-teardown path;
        the entry must already be unbound)."""
        router = payload["router"]
        name = payload["name"]
        policy = self.policy(router)
        policy.remove_access_list(name)
        policy.install_on(self.network)
        self.applied += 1
        return {"ok": True, "router": router, "acl": name}

    def _create_tunnel(self, payload: Dict) -> Dict:
        router = payload["router"]
        tunnel_id = int(payload["tunnel_id"])
        path = list(payload["path"])
        policy = self.policies.setdefault(router, EdgePolicy(router))
        route = self.network.polka.route_for_path(path)
        policy.add_tunnel(
            PolkaTunnel(tunnel_id=tunnel_id, path=tuple(path), route=route)
        )
        policy.install_on(self.network)
        self.applied += 1
        return {"ok": True, "router": router, "tunnel_id": tunnel_id,
                "route_id": route.route_id}

    def _bind_pbr(self, payload: Dict) -> Dict:
        router = payload["router"]
        policy = self.policy(router)
        policy.bind(payload["acl"], int(payload["tunnel_id"]))
        policy.install_on(self.network)
        self.applied += 1
        return {"ok": True, "router": router, "acl": payload["acl"],
                "tunnel_id": int(payload["tunnel_id"])}

    def _unbind_pbr(self, payload: Dict) -> Dict:
        router = payload["router"]
        policy = self.policy(router)
        policy.unbind(payload["acl"])
        self.applied += 1
        return {"ok": True, "router": router, "acl": payload["acl"]}
