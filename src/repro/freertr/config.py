"""Parser for the Fig. 10 freeRtr configuration surface.

The grammar reproduces the structure of the paper's router configuration
(comments start with ``!``, blocks end with ``exit``)::

    access-list flow3
     permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64
    exit
    interface tunnel3
     tunnel domain-name MIA SAO AMS
     tunnel destination AMS
     tunnel mode polka
    exit
    pbr flow3 tunnel 3

``tunnel domain-name`` lists the explicit router path that freeRtr
converts into a PolKA routeID; ``tunnel destination`` names the egress
edge (the paper uses its IP — router names or registered IPs both work
here); the trailing ``pbr`` statement binds the access-list to the tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.topology import Network

from .acl import AccessList, AclRule
from .tunnel import EdgePolicy, PolkaTunnel

__all__ = ["ConfigError", "FreeRtrConfig", "parse_config", "apply_config"]


class ConfigError(ValueError):
    """Raised on malformed configuration text."""


@dataclass
class _TunnelDecl:
    tunnel_id: int
    path: List[str] = field(default_factory=list)
    destination: Optional[str] = None
    mode: str = "polka"


@dataclass
class FreeRtrConfig:
    """Parsed configuration: ACLs, tunnel declarations, PBR bindings."""

    access_lists: Dict[str, AccessList] = field(default_factory=dict)
    tunnels: Dict[int, _TunnelDecl] = field(default_factory=dict)
    pbr: List[Tuple[str, int]] = field(default_factory=list)  # (acl, tunnel)


def parse_config(text: str) -> FreeRtrConfig:
    """Parse configuration text into a :class:`FreeRtrConfig`."""
    config = FreeRtrConfig()
    lines = [ln.rstrip() for ln in text.splitlines()]
    i = 0

    def block_lines(start: int) -> Tuple[List[str], int]:
        body = []
        j = start
        while j < len(lines):
            stripped = lines[j].strip()
            if stripped == "exit":
                return body, j + 1
            if stripped and not stripped.startswith("!"):
                body.append(stripped)
            j += 1
        raise ConfigError(f"block starting at line {start} missing 'exit'")

    while i < len(lines):
        stripped = lines[i].strip()
        if not stripped or stripped.startswith("!"):
            i += 1
            continue
        tokens = stripped.split()
        head = tokens[0].lower()
        if head == "access-list":
            if len(tokens) != 2:
                raise ConfigError(f"access-list needs a name: {stripped!r}")
            name = tokens[1]
            body, i = block_lines(i + 1)
            acl = AccessList(name)
            for rule_line in body:
                try:
                    acl.add(AclRule.parse(rule_line.split()))
                except ValueError as exc:
                    raise ConfigError(f"bad ACL rule {rule_line!r}: {exc}") from exc
            config.access_lists[name] = acl
        elif head == "interface":
            if len(tokens) != 2 or not tokens[1].startswith("tunnel"):
                raise ConfigError(f"only tunnel interfaces supported: {stripped!r}")
            try:
                tunnel_id = int(tokens[1][len("tunnel"):])
            except ValueError:
                raise ConfigError(f"bad tunnel id in {stripped!r}") from None
            body, i = block_lines(i + 1)
            decl = _TunnelDecl(tunnel_id=tunnel_id)
            for line in body:
                words = line.split()
                if words[:2] == ["tunnel", "domain-name"]:
                    decl.path = words[2:]
                elif words[:2] == ["tunnel", "destination"]:
                    if len(words) != 3:
                        raise ConfigError(f"bad destination: {line!r}")
                    decl.destination = words[2]
                elif words[:2] == ["tunnel", "mode"]:
                    decl.mode = words[2] if len(words) > 2 else "polka"
                else:
                    raise ConfigError(f"unknown tunnel statement {line!r}")
            if len(decl.path) < 2:
                raise ConfigError(
                    f"tunnel{tunnel_id} needs a domain-name path of >= 2 routers"
                )
            if decl.mode != "polka":
                raise ConfigError(f"tunnel{tunnel_id}: unsupported mode {decl.mode!r}")
            config.tunnels[tunnel_id] = decl
        elif head == "pbr":
            # pbr <acl> tunnel <id>
            if len(tokens) != 4 or tokens[2].lower() != "tunnel":
                raise ConfigError(f"bad pbr statement: {stripped!r}")
            config.pbr.append((tokens[1], int(tokens[3])))
            i += 1
        else:
            raise ConfigError(f"unknown configuration statement {stripped!r}")

    for acl_name, tunnel_id in config.pbr:
        if acl_name not in config.access_lists:
            raise ConfigError(f"pbr references unknown access-list {acl_name!r}")
        if tunnel_id not in config.tunnels:
            raise ConfigError(f"pbr references unknown tunnel {tunnel_id}")
    return config


def apply_config(
    network: Network,
    router_name: str,
    config: FreeRtrConfig,
    router_ips: Optional[Dict[str, str]] = None,
) -> EdgePolicy:
    """Compile a parsed config onto an edge router of ``network``.

    Tunnel paths are compiled to PolKA routeIDs against the network's
    PolKA domain; the resulting :class:`EdgePolicy` is installed as the
    router's classifier and returned for later PBR re-pointing.
    """
    if router_name not in network.routers:
        raise ConfigError(f"unknown router {router_name!r}")
    ip_to_name = {ip: name for name, ip in (router_ips or {}).items()}
    policy = EdgePolicy(router_name)
    for acl in config.access_lists.values():
        policy.add_access_list(acl)
    for decl in config.tunnels.values():
        if decl.path[0] != router_name:
            raise ConfigError(
                f"tunnel{decl.tunnel_id} path starts at {decl.path[0]}, "
                f"not at {router_name}"
            )
        for hop in decl.path:
            if hop not in network.routers:
                raise ConfigError(
                    f"tunnel{decl.tunnel_id}: unknown router {hop!r} in path"
                )
        destination = decl.destination
        if destination is not None:
            dest_name = ip_to_name.get(destination, destination)
            if dest_name != decl.path[-1]:
                raise ConfigError(
                    f"tunnel{decl.tunnel_id}: destination {destination} does "
                    f"not match path egress {decl.path[-1]}"
                )
        route = network.polka.route_for_path(decl.path)
        policy.add_tunnel(
            PolkaTunnel(tunnel_id=decl.tunnel_id, path=tuple(decl.path), route=route)
        )
    for acl_name, tunnel_id in config.pbr:
        policy.bind(acl_name, tunnel_id)
    policy.install_on(network)
    return policy
