"""freeRtr-style access lists with from-scratch IPv4 prefix matching.

The Fig. 10 configuration filters flows by source network, destination
host, IP protocol number and ToS byte::

    access-list flow3
     permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64

Protocol 6 is TCP (1 = ICMP, 17 = UDP).  A packet is steered by the first
matching rule; an access list with no matching rule denies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.packets import Packet

__all__ = [
    "ip_to_int",
    "mask_to_prefix_len",
    "parse_prefix",
    "AclRule",
    "AccessList",
    "PROTO_NUMBERS",
]

PROTO_NUMBERS = {"icmp": 1, "tcp": 6, "udp": 17}
_PROTO_NAMES = {v: k for k, v in PROTO_NUMBERS.items()}


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit integer (strict)."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address {ip!r}")
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {ip!r}")
        value = (value << 8) | octet
    return value


def mask_to_prefix_len(mask: str) -> int:
    """Dotted-quad netmask -> prefix length; rejects non-contiguous masks."""
    value = ip_to_int(mask)
    # a valid mask is all-ones followed by all-zeros
    inverted = (~value) & 0xFFFFFFFF
    if inverted & (inverted + 1):
        raise ValueError(f"non-contiguous netmask {mask!r}")
    return 32 - inverted.bit_length()


def parse_prefix(text: str) -> tuple:
    """Parse ``"40.40.1.0/24"`` or a bare address into (network, length)."""
    if "/" in text:
        addr, _, length = text.partition("/")
        prefix_len = int(length)
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length in {text!r}")
    else:
        addr, prefix_len = text, 32
    network = ip_to_int(addr)
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
    return network & mask, prefix_len


def _prefix_contains(network: int, prefix_len: int, ip: int) -> bool:
    if prefix_len == 0:
        return True
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    return (ip & mask) == network


@dataclass(frozen=True)
class AclRule:
    """One permit rule: protocol, source prefix, destination prefix, ToS.

    ``protocol=None`` matches any protocol; ``tos=None`` matches any ToS.
    """

    src_network: int
    src_prefix_len: int
    dst_network: int
    dst_prefix_len: int
    protocol: Optional[int] = None
    tos: Optional[int] = None

    @classmethod
    def parse(cls, tokens: Sequence[str]) -> "AclRule":
        """Parse Fig. 10's token layout:

        ``permit <proto> <src> <srcmask> <dst> <dstmask> [tos <value>]``
        where proto is a number or name, or ``any``.
        """
        tokens = list(tokens)
        if not tokens or tokens[0] != "permit":
            raise ValueError(f"ACL rule must start with 'permit': {tokens!r}")
        tokens = tokens[1:]
        if len(tokens) < 5:
            raise ValueError(f"truncated ACL rule: {tokens!r}")
        proto_tok = tokens[0].lower()
        if proto_tok == "any":
            protocol = None
        elif proto_tok in PROTO_NUMBERS:
            protocol = PROTO_NUMBERS[proto_tok]
        else:
            protocol = int(proto_tok)
        src_net, src_len = parse_prefix(tokens[1])
        src_len_from_mask = mask_to_prefix_len(tokens[2])
        dst_net, dst_len = parse_prefix(tokens[3])
        dst_len_from_mask = mask_to_prefix_len(tokens[4])
        tos = None
        rest = tokens[5:]
        if rest:
            if len(rest) != 2 or rest[0].lower() != "tos":
                raise ValueError(f"unexpected ACL suffix: {rest!r}")
            tos = int(rest[1])
        return cls(
            src_network=src_net,
            src_prefix_len=src_len_from_mask if "/" not in tokens[1] else src_len,
            dst_network=dst_net,
            dst_prefix_len=dst_len_from_mask if "/" not in tokens[3] else dst_len,
            protocol=protocol,
            tos=tos,
        )

    def matches(self, packet: Packet) -> bool:
        if self.protocol is not None:
            proto = packet.protocol
            # echo replies count as ICMP for classification purposes
            if proto == "icmp-reply":
                proto = "icmp"
            if PROTO_NUMBERS.get(proto) != self.protocol:
                return False
        if self.tos is not None and packet.tos != self.tos:
            return False
        try:
            src = ip_to_int(packet.src_ip)
            dst = ip_to_int(packet.dst_ip)
        except ValueError:
            return False  # packets without IPs never match IP ACLs
        return _prefix_contains(
            self.src_network, self.src_prefix_len, src
        ) and _prefix_contains(self.dst_network, self.dst_prefix_len, dst)

    def describe(self) -> str:
        proto = "any" if self.protocol is None else _PROTO_NAMES.get(
            self.protocol, str(self.protocol)
        )
        tos = "" if self.tos is None else f" tos {self.tos}"
        return (
            f"permit {proto} "
            f"{_int_to_ip(self.src_network)}/{self.src_prefix_len} -> "
            f"{_int_to_ip(self.dst_network)}/{self.dst_prefix_len}{tos}"
        )


def _int_to_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class AccessList:
    """Named, ordered collection of permit rules (first match wins)."""

    def __init__(self, name: str, rules: Optional[List[AclRule]] = None):
        self.name = name
        self.rules: List[AclRule] = list(rules or [])

    def add(self, rule: AclRule) -> None:
        self.rules.append(rule)

    def permits(self, packet: Packet) -> bool:
        return any(rule.matches(packet) for rule in self.rules)

    def describe(self) -> str:
        lines = [f"access-list {self.name}"]
        lines += [f" {rule.describe()}" for rule in self.rules]
        return "\n".join(lines)
