"""repro.datasets — synthetic stand-ins for the paper's external data.

The only external dataset the paper uses is the (non-public) UQ wireless
trace of Sec. V.A.1; :func:`generate_uq_wireless` produces a structural
equivalent.  See the module docstring of :mod:`repro.datasets.uq_wireless`
for the substitution rationale.
"""

from .uq_wireless import WirelessDataset, generate_uq_wireless, load_csv

__all__ = ["WirelessDataset", "generate_uq_wireless", "load_csv"]
