"""Synthetic substitute for the UQ wireless bandwidth dataset (Fig. 5).

The paper trains its regressors on iperf bandwidth traces collected at
The University of Queensland in June 2017: one laptop on WiFi, one on
LTE, sampled once per second for 500 seconds while the experimenter
walked from inside building 78 to building 50.  That dataset is not
public, so we generate traces with the same structure:

* **indoor regime (0 - ~100 s)** — WiFi high and fairly stable (strong
  AP signal), LTE poor (indoor attenuation);
* **walking transition (~100 - ~140 s)** — WiFi decays as the AP falls
  behind, LTE climbs;
* **outdoor regime (~140 - 500 s)** — WiFi degraded, *bursty and heavy-
  tailed* (fringe coverage: deep fades and opportunistic spikes), LTE
  moderate and noisy.

The regressor study only depends on these qualitative properties — a
non-stationary regime change plus heavy short-term variance (the paper's
best WiFi RMSE is ~14 Mbps, i.e. even good models can't nail the WiFi
noise) — which this generator reproduces with a seeded AR(1)-plus-bursts
process.

Path numbering follows Figs. 5b/6/7: **Path 1 = WiFi, Path 2 = LTE**.
(Sec. V.B's prose once swaps the labels; we keep the figures' convention.)
"""

from __future__ import annotations

import csv
from dataclasses import dataclass

import numpy as np

__all__ = ["WirelessDataset", "generate_uq_wireless", "load_csv"]

DURATION_S = 500
INDOOR_END_S = 100
TRANSITION_END_S = 140


@dataclass(frozen=True)
class WirelessDataset:
    """Per-second bandwidth of the two wireless paths.

    Attributes
    ----------
    time:
        Seconds, ``0..n-1``.
    wifi:
        Path 1 bandwidth (Mbps).
    lte:
        Path 2 bandwidth (Mbps).
    """

    time: np.ndarray
    wifi: np.ndarray
    lte: np.ndarray

    def path(self, index: int) -> np.ndarray:
        """Path 1 = WiFi, Path 2 = LTE (Fig. 5b/6/7 convention)."""
        if index == 1:
            return self.wifi
        if index == 2:
            return self.lte
        raise ValueError(f"path index must be 1 or 2, got {index}")

    @property
    def n_samples(self) -> int:
        return int(self.time.shape[0])

    def to_csv(self, path) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "wifi_mbps", "lte_mbps"])
            for t, w, l in zip(self.time, self.wifi, self.lte):
                writer.writerow([f"{t:.0f}", f"{w:.6f}", f"{l:.6f}"])


def load_csv(path) -> WirelessDataset:
    """Load a dataset written by :meth:`WirelessDataset.to_csv`."""
    times, wifi, lte = [], [], []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"time_s", "wifi_mbps", "lte_mbps"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(
                f"CSV must have columns {sorted(required)}, got {reader.fieldnames}"
            )
        for row in reader:
            times.append(float(row["time_s"]))
            wifi.append(float(row["wifi_mbps"]))
            lte.append(float(row["lte_mbps"]))
    if not times:
        raise ValueError("empty dataset CSV")
    return WirelessDataset(
        time=np.asarray(times), wifi=np.asarray(wifi), lte=np.asarray(lte)
    )


def _ar1(rng: np.random.Generator, n: int, rho: float, sigma: float) -> np.ndarray:
    """Zero-mean AR(1) noise with stationary std ``sigma``."""
    innovations = rng.normal(scale=sigma * np.sqrt(1 - rho**2), size=n)
    out = np.empty(n)
    out[0] = rng.normal(scale=sigma)
    for i in range(1, n):
        out[i] = rho * out[i - 1] + innovations[i]
    return out


def _transient_events(
    rng: np.random.Generator,
    base: np.ndarray,
    active: np.ndarray,
    p_drop: float,
    p_spike: float,
    drop_gain: float = 0.08,
    spike_add: float = 22.0,
    max_len: int = 3,
) -> np.ndarray:
    """Overlay short dropouts/spikes that revert to the pre-event level."""
    n = base.shape[0]
    out = base.copy()
    i = 0
    while i < n:
        if active[i] and rng.random() < p_drop:
            length = int(rng.integers(1, max_len + 1))
            out[i : i + length] = base[i : i + length] * drop_gain
            i += length
            continue
        if active[i] and rng.random() < p_spike:
            length = int(rng.integers(1, 3))
            out[i : i + length] = base[i : i + length] + spike_add
            i += length
            continue
        i += 1
    return out


#: Outdoor WiFi fringe-coverage levels (Mbps).
_WIFI_GOOD = 38.0
_WIFI_MID = 15.0
_WIFI_OUT = 2.0
_OUTAGE_LEN = 3  # beacon-loss disassociation window: outages last ~3 s


def _wifi_state_chain(rng: np.random.Generator, n: int) -> np.ndarray:
    """Semi-Markov fringe-WiFi channel with *fixed-duration* outages.

    good  -- stays w.p. 0.85, else degrades to mid;
    mid   -- lasts one sample, then re-associates (70% -> good) or loses
             the AP (30% -> outage);
    outage-- lasts exactly ``_OUTAGE_LEN`` samples (the driver's beacon-
             loss timeout), then snaps back to good.

    The deterministic outage duration is the structure that separates the
    model families in the Fig. 6 tournament: "three consecutive low lags
    => recovery now, fewer => stay down" is a conditional read of the lag
    window that tree ensembles represent exactly, while a global linear
    lag model must give lag coefficients a single sign and so cannot
    predict the recovery jump.  Transitions *into* degradation stay
    random, as in the real trace.
    """
    out = np.empty(n)
    i = 0
    state = "good"
    while i < n:
        if state == "good":
            out[i] = _WIFI_GOOD
            state = "good" if rng.random() < 0.85 else "mid"
            i += 1
        elif state == "mid":
            out[i] = _WIFI_MID
            state = "good" if rng.random() < 0.7 else "out"
            i += 1
        else:  # outage: fixed duration, then recovery
            length = min(_OUTAGE_LEN, n - i)
            out[i : i + length] = _WIFI_OUT
            state = "good"
            i += length
    return out


def generate_uq_wireless(
    seed: int = 3,
    duration_s: int = DURATION_S,
    indoor_end_s: int = INDOOR_END_S,
    transition_end_s: int = TRANSITION_END_S,
) -> WirelessDataset:
    """Generate the synthetic UQ trace (deterministic per seed).

    Returns Mbps series clipped at 0 (iperf never reports negative
    bandwidth; clipping also produces the WiFi dropouts seen outdoors).
    """
    if not 0 < indoor_end_s < transition_end_s < duration_s:
        raise ValueError(
            "need 0 < indoor_end_s < transition_end_s < duration_s"
        )
    rng = np.random.default_rng(seed)
    t = np.arange(duration_s, dtype=np.float64)

    # --- regime envelope (piecewise mean levels, smooth transition) -----
    wifi_mean = np.empty(duration_s)
    lte_mean = np.empty(duration_s)
    indoor = t < indoor_end_s
    walking = (t >= indoor_end_s) & (t < transition_end_s)
    outdoor = t >= transition_end_s

    wifi_mean[indoor] = 52.0
    lte_mean[indoor] = 5.0
    ramp = (t[walking] - indoor_end_s) / (transition_end_s - indoor_end_s)
    wifi_mean[walking] = 52.0 + ramp * (28.0 - 52.0)
    lte_mean[walking] = 5.0 + ramp * (42.0 - 5.0)
    wifi_mean[outdoor] = 28.0
    lte_mean[outdoor] = 42.0

    # --- outdoor WiFi: 3-state fringe-coverage channel ---------------------
    wifi_chain = _wifi_state_chain(rng, duration_s)
    wifi_mean = np.where(outdoor, wifi_chain, wifi_mean)

    # --- noise: broad indoors, tight within outdoor states -----------------
    wifi_noise = np.where(
        t < transition_end_s,
        _ar1(rng, duration_s, rho=0.55, sigma=1.0),
        rng.normal(size=duration_s),  # iid within outdoor states
    )
    lte_noise = _ar1(rng, duration_s, rho=0.6, sigma=1.0)
    lte_drift = _ar1(rng, duration_s, rho=0.97, sigma=4.0)
    wifi_sigma = np.where(indoor, 5.0, np.where(walking, 8.0, 1.0))
    lte_sigma = np.where(indoor, 1.5, 2.0)
    wifi_base = wifi_mean + wifi_noise * wifi_sigma
    lte_base = lte_mean + np.where(indoor, 0.0, lte_drift) + lte_noise * lte_sigma

    # --- transient fades/spikes that revert to the pre-event level --------
    wifi = _transient_events(
        rng, wifi_base, active=walking, p_drop=0.10, p_spike=0.05,
        drop_gain=0.05,
    )
    lte = _transient_events(
        rng, lte_base, active=outdoor, p_drop=0.10, p_spike=0.02,
        drop_gain=0.15, spike_add=10.0,
    )

    return WirelessDataset(
        time=t, wifi=np.clip(wifi, 0.0, None), lte=np.clip(lte, 0.0, None)
    )
