"""repro.ml — a from-scratch regression suite (mini-sklearn).

scikit-learn is not available in this environment, so the paper's entire
ML layer is reimplemented on numpy/scipy behind the familiar
``fit``/``predict``/``get_params`` API: all eighteen tournament regressors
(Sec. V.A.2), ``StandardScaler``, train/test splitting, lag-matrix
windowing and the RMSE-family metrics.

Use :func:`repro.ml.registry.make_regressor` / ``roster()`` to obtain the
paper's entrants by their R1..R18 identifiers.
"""

from .base import BaseEstimator, NotFittedError, RegressorMixin, clone
from .ensemble import (
    AdaBoostRegressor,
    BaggingRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
    RandomForestRegressor,
)
from .gaussian_process import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    Kernel,
    Product,
    Sum,
    WhiteKernel,
)
from .linear_model import (
    ARDRegression,
    ElasticNet,
    HuberRegressor,
    Lasso,
    LinearRegression,
    RANSACRegressor,
    Ridge,
    SGDRegressor,
    TheilSenRegressor,
)
from .metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from .model_selection import (
    KFold,
    TimeSeriesSplit,
    cross_val_score,
    make_lag_matrix,
    train_test_split,
)
from .neural import MLPRegressor
from .pipeline import Pipeline, make_pipeline
from .preprocessing import MinMaxScaler, StandardScaler
from .registry import (
    EXTENSION_SPECS,
    REGRESSOR_SPECS,
    RegressorSpec,
    make_regressor,
    roster,
)
from .svm import SVR, LinearSVR
from .tree import DecisionTreeRegressor

__all__ = [
    # base
    "BaseEstimator", "RegressorMixin", "NotFittedError", "clone",
    # linear
    "LinearRegression", "Ridge", "Lasso", "ElasticNet", "SGDRegressor",
    "HuberRegressor", "ARDRegression", "RANSACRegressor", "TheilSenRegressor",
    # tree/ensemble
    "DecisionTreeRegressor", "RandomForestRegressor", "BaggingRegressor",
    "AdaBoostRegressor", "GradientBoostingRegressor",
    "HistGradientBoostingRegressor",
    # gp
    "GaussianProcessRegressor", "Kernel", "RBF", "ConstantKernel",
    "WhiteKernel", "Sum", "Product",
    # svm
    "SVR", "LinearSVR",
    # metrics
    "mean_squared_error", "root_mean_squared_error", "mean_absolute_error",
    "median_absolute_error", "max_error", "r2_score",
    "explained_variance_score", "mean_absolute_percentage_error",
    # selection / preprocessing
    "train_test_split", "make_lag_matrix", "KFold", "TimeSeriesSplit",
    "cross_val_score", "StandardScaler", "MinMaxScaler",
    # registry
    "REGRESSOR_SPECS", "EXTENSION_SPECS", "RegressorSpec", "make_regressor",
    "roster",
    # extensions
    "MLPRegressor", "Pipeline", "make_pipeline",
]
