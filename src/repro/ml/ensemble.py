"""Ensemble regressors: Bagging, Random Forest, AdaBoost.R2, Gradient
Boosting and Histogram Gradient Boosting.

Five of the paper's eighteen entrants (R1, R3, R6, R8, R13) — and, per its
Fig. 6, the family that wins the tournament (RFR and GBR have the lowest
RMSE and RFR is the model integrated into the routing framework).
Defaults track scikit-learn's.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
    clone,
    resolve_rng,
)
from .tree import DecisionTreeRegressor

__all__ = [
    "BaggingRegressor",
    "RandomForestRegressor",
    "AdaBoostRegressor",
    "GradientBoostingRegressor",
    "HistGradientBoostingRegressor",
]


def _seed_for(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**31 - 1))


class BaggingRegressor(BaseEstimator, RegressorMixin):
    """Bootstrap-aggregated clones of a base estimator (default: full CART).

    Prediction is the plain mean of the members, reducing variance of the
    unstable base learner.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        max_samples: float = 1.0,
        bootstrap: bool = True,
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < max_samples <= 1.0:
            raise ValueError("max_samples must be in (0, 1]")
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: Optional[List[BaseEstimator]] = None

    def fit(self, X, y) -> "BaggingRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        rng = resolve_rng(self.random_state)
        base = self.estimator if self.estimator is not None else DecisionTreeRegressor()
        m = max(1, int(round(self.max_samples * n)))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=m)
            else:
                idx = rng.permutation(n)[:m]
            member = clone(base)
            if "random_state" in member.get_params():
                member.set_params(random_state=_seed_for(rng))
            member.fit(X[idx], y[idx])
            self.estimators_.append(member)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        preds = np.stack([est.predict(X) for est in self.estimators_])
        return preds.mean(axis=0)


class RandomForestRegressor(BaseEstimator, RegressorMixin):
    """Random forest: bootstrapped CARTs with per-node feature subsampling.

    sklearn's regression default is ``max_features=1.0`` (all features),
    making the default forest a variance-reduced bagged ensemble; "sqrt"
    and "log2" enable classic Breiman subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=1.0,
        bootstrap: bool = True,
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: Optional[List[DecisionTreeRegressor]] = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        rng = resolve_rng(self.random_state)
        self.estimators_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=_seed_for(rng),
            )
            idx = rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        preds = np.stack([tree.predict(X) for tree in self.estimators_])
        return preds.mean(axis=0)


class AdaBoostRegressor(BaseEstimator, RegressorMixin):
    """AdaBoost.R2 (Drucker 1997), sklearn's regression boosting.

    Each round draws a weighted bootstrap, fits the base learner (default
    depth-3 CART), computes the normalized loss over *all* samples, stops
    if the average loss reaches 0.5, and reweights with
    ``beta = L / (1 - L)``.  Prediction is the weighted *median* across
    members — the detail that makes R2 robust to its weakest learners.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        loss: str = "linear",
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if loss not in ("linear", "square", "exponential"):
            raise ValueError(f"unknown loss {loss!r}")
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.loss = loss
        self.random_state = random_state
        self.estimators_: Optional[List[BaseEstimator]] = None
        self.estimator_weights_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "AdaBoostRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        rng = resolve_rng(self.random_state)
        base = (
            self.estimator
            if self.estimator is not None
            else DecisionTreeRegressor(max_depth=3)
        )
        w = np.full(n, 1.0 / n)
        estimators: List[BaseEstimator] = []
        weights: List[float] = []
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=n, replace=True, p=w)
            member = clone(base)
            if "random_state" in member.get_params():
                member.set_params(random_state=_seed_for(rng))
            member.fit(X[idx], y[idx])
            err = np.abs(y - member.predict(X))
            err_max = err.max()
            if err_max <= 0:
                # perfect fit: dominate the vote and stop
                estimators.append(member)
                weights.append(1.0)
                break
            loss = err / err_max
            if self.loss == "square":
                loss = loss**2
            elif self.loss == "exponential":
                loss = 1.0 - np.exp(-loss)
            avg_loss = float(w @ loss)
            if avg_loss >= 0.5:
                if not estimators:
                    estimators.append(member)
                    weights.append(1.0)
                break
            beta = avg_loss / (1.0 - avg_loss)
            estimators.append(member)
            weights.append(self.learning_rate * np.log(1.0 / beta))
            w *= beta ** (self.learning_rate * (1.0 - loss))
            w /= w.sum()
        self.estimators_ = estimators
        self.estimator_weights_ = np.asarray(weights)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        preds = np.stack([est.predict(X) for est in self.estimators_])  # (m, n)
        weights = self.estimator_weights_
        order = np.argsort(preds, axis=0)
        sorted_weights = weights[order]  # weight of each sorted prediction
        cdf = np.cumsum(sorted_weights, axis=0)
        half = 0.5 * cdf[-1, :]
        median_pos = np.argmax(cdf >= half, axis=0)
        cols = np.arange(preds.shape[1])
        return preds[order[median_pos, cols], cols]


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares gradient boosting on shallow CARTs.

    ``F_0`` is the target mean; each stage fits a depth-``max_depth`` tree
    to the current residuals and contributes ``learning_rate`` of its
    prediction.  ``subsample < 1`` gives stochastic gradient boosting.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.init_: Optional[float] = None
        self.estimators_: Optional[List[DecisionTreeRegressor]] = None
        self.train_score_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        rng = resolve_rng(self.random_state)
        self.init_ = float(y.mean())
        current = np.full(n, self.init_)
        self.estimators_ = []
        scores = []
        m = max(1, int(round(self.subsample * n)))
        for _ in range(self.n_estimators):
            residual = y - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                random_state=_seed_for(rng),
            )
            if self.subsample < 1.0:
                idx = rng.permutation(n)[:m]
                tree.fit(X[idx], residual[idx])
            else:
                tree.fit(X, residual)
            current += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            scores.append(float(np.mean((y - current) ** 2)))
        self.train_score_ = np.asarray(scores)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            out += self.learning_rate * tree.predict(X)
        return out


# --------------------------------------------------------------------------
# Histogram gradient boosting
# --------------------------------------------------------------------------


class _HistNode:
    __slots__ = ("idx", "grad_sum", "count", "node_id", "depth")

    def __init__(self, idx, grad_sum, node_id, depth):
        self.idx = idx
        self.grad_sum = grad_sum
        self.count = idx.shape[0]
        self.node_id = node_id
        self.depth = depth


class _HistTree:
    """One leaf-wise-grown tree over pre-binned features (LightGBM-style).

    Squared loss means hessians are identically 1, so node statistics are
    just (sum of gradients, count) and the split gain is
    ``GL^2/(nL+lam) + GR^2/(nR+lam) - G^2/(n+lam)``.
    """

    def __init__(self, max_leaf_nodes, min_samples_leaf, l2, max_depth):
        self.max_leaf_nodes = max_leaf_nodes
        self.min_samples_leaf = min_samples_leaf
        self.l2 = l2
        self.max_depth = max_depth
        self.feature: List[int] = []
        self.split_bin: List[int] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []

    def _new_node(self) -> int:
        self.feature.append(-1)
        self.split_bin.append(0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def _best_split(self, binned, grad, node, n_bins):
        best = (0.0, -1, -1)  # (gain, feature, bin)
        g_total = node.grad_sum
        n_total = node.count
        parent = g_total**2 / (n_total + self.l2)
        for j in range(binned.shape[1]):
            bins = binned[node.idx, j]
            g_hist = np.bincount(bins, weights=grad[node.idx], minlength=n_bins)
            c_hist = np.bincount(bins, minlength=n_bins)
            g_left = np.cumsum(g_hist)[:-1]
            c_left = np.cumsum(c_hist)[:-1]
            g_right = g_total - g_left
            c_right = n_total - c_left
            ok = (c_left >= self.min_samples_leaf) & (c_right >= self.min_samples_leaf)
            if not ok.any():
                continue
            gain = np.where(
                ok,
                g_left**2 / (c_left + self.l2 + 1e-12)
                + g_right**2 / (c_right + self.l2 + 1e-12)
                - parent,
                -np.inf,
            )
            k = int(np.argmax(gain))
            if gain[k] > best[0] + 1e-12:
                best = (float(gain[k]), j, k)
        return best

    def fit(self, binned, grad, n_bins):
        root_id = self._new_node()
        root = _HistNode(np.arange(binned.shape[0]), float(grad.sum()), root_id, 0)
        self.value[root_id] = -root.grad_sum / (root.count + self.l2)
        heap = []
        counter = 0

        def try_push(node):
            nonlocal counter
            if self.max_depth is not None and node.depth >= self.max_depth:
                return
            if node.count < 2 * self.min_samples_leaf:
                return
            gain, feat, bin_ = self._best_split(binned, grad, node, n_bins)
            if feat >= 0:
                heapq.heappush(heap, (-gain, counter, node, feat, bin_))
                counter += 1

        try_push(root)
        n_leaves = 1
        while heap and n_leaves < self.max_leaf_nodes:
            _, _, node, feat, bin_ = heapq.heappop(heap)
            mask = binned[node.idx, feat] <= bin_
            left_idx = node.idx[mask]
            right_idx = node.idx[~mask]
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                continue
            self.feature[node.node_id] = feat
            self.split_bin[node.node_id] = bin_
            lid, rid = self._new_node(), self._new_node()
            self.left[node.node_id] = lid
            self.right[node.node_id] = rid
            gl = float(grad[left_idx].sum())
            left = _HistNode(left_idx, gl, lid, node.depth + 1)
            right = _HistNode(right_idx, node.grad_sum - gl, rid, node.depth + 1)
            self.value[lid] = -left.grad_sum / (left.count + self.l2)
            self.value[rid] = -right.grad_sum / (right.count + self.l2)
            n_leaves += 1
            try_push(left)
            try_push(right)
        self._freeze()
        return self

    def _freeze(self):
        self.feature_arr = np.asarray(self.feature, dtype=np.intp)
        self.split_bin_arr = np.asarray(self.split_bin, dtype=np.intp)
        self.left_arr = np.asarray(self.left, dtype=np.intp)
        self.right_arr = np.asarray(self.right, dtype=np.intp)
        self.value_arr = np.asarray(self.value)

    def predict_binned(self, binned) -> np.ndarray:
        nodes = np.zeros(binned.shape[0], dtype=np.intp)
        active = self.feature_arr[nodes] != -1
        while active.any():
            current = nodes[active]
            feat = self.feature_arr[current]
            go_left = binned[active, feat] <= self.split_bin_arr[current]
            nodes[active] = np.where(go_left, self.left_arr[current], self.right_arr[current])
            active = self.feature_arr[nodes] != -1
        return self.value_arr[nodes]


class HistGradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Histogram gradient boosting (LightGBM-style, squared loss).

    Features are quantile-binned into at most ``max_bins`` buckets once;
    trees are grown leaf-wise by best gain on the binned data.  Defaults
    follow sklearn (``max_iter=100, lr=0.1, max_leaf_nodes=31,
    min_samples_leaf=20``).
    """

    def __init__(
        self,
        max_iter: int = 100,
        learning_rate: float = 0.1,
        max_leaf_nodes: int = 31,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 20,
        l2_regularization: float = 0.0,
        max_bins: int = 255,
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if not 2 <= max_bins <= 255:
            raise ValueError("max_bins must be in [2, 255]")
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.max_leaf_nodes = max_leaf_nodes
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.l2_regularization = l2_regularization
        self.max_bins = max_bins
        self.bin_edges_: Optional[List[np.ndarray]] = None
        self.init_: Optional[float] = None
        self.trees_: Optional[List[_HistTree]] = None

    def _bin_fit(self, X) -> np.ndarray:
        self.bin_edges_ = []
        binned = np.empty(X.shape, dtype=np.intp)
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if uniq.size <= self.max_bins:
                edges = (uniq[:-1] + uniq[1:]) / 2.0
            else:
                qs = np.quantile(col, np.linspace(0, 1, self.max_bins + 1)[1:-1])
                edges = np.unique(qs)
            self.bin_edges_.append(edges)
            binned[:, j] = np.searchsorted(edges, col, side="right")
        return binned

    def _bin_transform(self, X) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.intp)
        for j in range(X.shape[1]):
            binned[:, j] = np.searchsorted(self.bin_edges_[j], X[:, j], side="right")
        return binned

    def fit(self, X, y) -> "HistGradientBoostingRegressor":
        X, y = check_X_y(X, y)
        binned = self._bin_fit(X)
        n_bins = self.max_bins + 1
        self.init_ = float(y.mean())
        current = np.full(X.shape[0], self.init_)
        self.trees_ = []
        for _ in range(self.max_iter):
            grad = current - y  # d/dF of 0.5*(F - y)^2
            tree = _HistTree(
                self.max_leaf_nodes,
                self.min_samples_leaf,
                self.l2_regularization,
                self.max_depth,
            ).fit(binned, grad, n_bins)
            current += self.learning_rate * tree.predict_binned(binned)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = check_array(X)
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {X.shape[1]}"
            )
        binned = self._bin_transform(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict_binned(binned)
        return out
