"""Linear regression family: OLS, Ridge, Lasso, ElasticNet, SGD, Huber,
ARD, RANSAC and Theil-Sen.

These are nine of the paper's eighteen tournament entrants (R2, R5, R9,
R10, R11, R12, R14, R15, R18).  Each implements the reference algorithm
with scikit-learn's default hyperparameters so that the tournament's
relative ordering is comparable to the paper's Fig. 6.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Optional

import numpy as np
from scipy import optimize

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
    clone,
    resolve_rng,
)

__all__ = [
    "LinearRegression",
    "Ridge",
    "Lasso",
    "ElasticNet",
    "SGDRegressor",
    "HuberRegressor",
    "ARDRegression",
    "RANSACRegressor",
    "TheilSenRegressor",
]


class _LinearPredictorMixin:
    """Shared ``predict`` for models exposing ``coef_`` and ``intercept_``."""

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class LinearRegression(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Ordinary least squares via numpy's (SVD-based) ``lstsq``."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
            beta, *_ = np.linalg.lstsq(design, y, rcond=None)
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            beta, *_ = np.linalg.lstsq(X, y, rcond=None)
            self.coef_ = beta
            self.intercept_ = 0.0
        return self


class Ridge(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """L2-penalized least squares; the intercept is not penalized
    (data is centred before solving, as in sklearn)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNet(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Coordinate descent for the elastic-net objective.

    Minimizes ``1/(2n)||y - Xw - b||^2 + alpha*l1_ratio*||w||_1
    + alpha*(1 - l1_ratio)/2*||w||_2^2`` — sklearn's exact objective and
    defaults (``alpha=1.0, l1_ratio=0.5``), which is why ElasticNet and
    Lasso land mid-field-to-poor in the paper's Fig. 6: with ``alpha=1.0``
    on standardized bandwidth data they shrink aggressively.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.5,
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
    ):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "ElasticNet":
        X, y = check_X_y(X, y)
        n, p = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(p)
            y_mean = 0.0
            Xc, yc = X.copy(), y.copy()

        l1 = self.alpha * self.l1_ratio
        l2 = self.alpha * (1.0 - self.l1_ratio)
        col_sq = (Xc**2).sum(axis=0) / n  # ||x_j||^2 / n

        w = np.zeros(p)
        residual = yc.copy()  # residual = yc - Xc @ w, maintained incrementally
        for iteration in range(1, self.max_iter + 1):
            max_delta = 0.0
            max_w = 0.0
            for j in range(p):
                if col_sq[j] == 0.0:
                    continue
                w_old = w[j]
                rho = (Xc[:, j] @ residual) / n + col_sq[j] * w_old
                w_new = _soft_threshold(rho, l1) / (col_sq[j] + l2)
                if w_new != w_old:
                    residual += Xc[:, j] * (w_old - w_new)
                    w[j] = w_new
                max_delta = max(max_delta, abs(w[j] - w_old))
                max_w = max(max_w, abs(w[j]))
            self.n_iter_ = iteration
            if max_delta <= self.tol * max(max_w, 1e-12):
                break
        self.coef_ = w
        self.intercept_ = float(y_mean - x_mean @ w)
        return self


class Lasso(ElasticNet):
    """L1-penalized least squares — elastic net with ``l1_ratio=1``."""

    def __init__(
        self,
        alpha: float = 1.0,
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
    ):
        super().__init__(
            alpha=alpha,
            l1_ratio=1.0,
            max_iter=max_iter,
            tol=tol,
            fit_intercept=fit_intercept,
        )


class SGDRegressor(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Stochastic gradient descent on squared loss with L2 penalty.

    Follows sklearn's defaults: ``alpha=1e-4``, inverse-scaling learning
    rate ``eta = eta0 / t**power_t`` with ``eta0=0.01, power_t=0.25``,
    per-epoch shuffling, and early stopping after ``n_iter_no_change``
    epochs without ``tol`` improvement in training loss.
    """

    def __init__(
        self,
        alpha: float = 1e-4,
        max_iter: int = 1000,
        tol: float = 1e-3,
        eta0: float = 0.01,
        power_t: float = 0.25,
        n_iter_no_change: int = 5,
        shuffle: bool = True,
        random_state=None,
        fit_intercept: bool = True,
    ):
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.eta0 = eta0
        self.power_t = power_t
        self.n_iter_no_change = n_iter_no_change
        self.shuffle = shuffle
        self.random_state = random_state
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "SGDRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        rng = resolve_rng(self.random_state)
        w = np.zeros(p)
        b = 0.0
        t = 1
        best_loss = np.inf
        stale = 0
        order = np.arange(n)
        for epoch in range(1, self.max_iter + 1):
            if self.shuffle:
                rng.shuffle(order)
            for i in order:
                eta = self.eta0 / t**self.power_t
                pred = X[i] @ w + b
                grad = pred - y[i]
                w -= eta * (grad * X[i] + self.alpha * w)
                if self.fit_intercept:
                    b -= eta * grad
                t += 1
            self.n_iter_ = epoch
            loss = float(np.mean((X @ w + b - y) ** 2)) / 2.0
            if loss > best_loss - self.tol:
                stale += 1
                if stale >= self.n_iter_no_change:
                    break
            else:
                stale = 0
            best_loss = min(best_loss, loss)
        self.coef_ = w
        self.intercept_ = float(b)
        return self


class HuberRegressor(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Huber loss regression, jointly optimizing coefficients and scale.

    Implements Owen's (2007) convex formulation used by sklearn::

        min_{w, b, sigma > 0}  sum_i [ sigma + H_eps(r_i / sigma) * sigma ]
                               + alpha * ||w||^2

    solved with L-BFGS-B on ``(w, b, log sigma)`` with an analytic
    gradient.  Defaults match sklearn (``epsilon=1.35, alpha=1e-4``).
    """

    def __init__(
        self,
        epsilon: float = 1.35,
        alpha: float = 1e-4,
        max_iter: int = 100,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ):
        if epsilon < 1.0:
            raise ValueError("epsilon must be >= 1.0")
        self.epsilon = epsilon
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.scale_: float = 1.0

    def fit(self, X, y) -> "HuberRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        eps = self.epsilon

        def objective(theta):
            w = theta[:p]
            b = theta[p] if self.fit_intercept else 0.0
            sigma = math.exp(theta[-1])
            r = y - X @ w - b
            z = r / sigma
            inliers = np.abs(z) <= eps
            h = np.where(inliers, z**2, 2.0 * eps * np.abs(z) - eps**2)
            f = n * sigma + sigma * h.sum() + self.alpha * (w @ w)
            # gradients
            dh_dz = np.where(inliers, 2.0 * z, 2.0 * eps * np.sign(z))
            grad_w = -(X.T @ dh_dz) + 2.0 * self.alpha * w
            grad_b = -dh_dz.sum()
            # d/dsigma of sigma*h(r/sigma) = h - z*dh_dz; plus the n*sigma term
            dsigma = n + (h - z * dh_dz).sum()
            grad = np.empty_like(theta)
            grad[:p] = grad_w
            if self.fit_intercept:
                grad[p] = grad_b
            grad[-1] = dsigma * sigma  # chain rule through log-sigma
            return f, grad

        size = p + (1 if self.fit_intercept else 0) + 1
        theta0 = np.zeros(size)
        theta0[-1] = math.log(max(np.std(y), 1e-3))
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        theta = result.x
        self.coef_ = theta[:p]
        self.intercept_ = float(theta[p]) if self.fit_intercept else 0.0
        self.scale_ = float(math.exp(theta[-1]))
        return self


class ARDRegression(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Automatic Relevance Determination (sparse Bayesian) regression.

    Evidence maximization with one precision per weight (Tipping 2001 /
    sklearn's ARDRegression): weights whose precision exceeds
    ``threshold_lambda`` are pruned.  Defaults mirror sklearn.
    """

    def __init__(
        self,
        max_iter: int = 300,
        tol: float = 1e-3,
        alpha_1: float = 1e-6,
        alpha_2: float = 1e-6,
        lambda_1: float = 1e-6,
        lambda_2: float = 1e-6,
        threshold_lambda: float = 1e4,
        fit_intercept: bool = True,
    ):
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_1 = alpha_1
        self.alpha_2 = alpha_2
        self.lambda_1 = lambda_1
        self.lambda_2 = lambda_2
        self.threshold_lambda = threshold_lambda
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.lambda_: Optional[np.ndarray] = None
        self.alpha_: float = 0.0

    def fit(self, X, y) -> "ARDRegression":
        X, y = check_X_y(X, y)
        n, p = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(p)
            y_mean = 0.0
            Xc, yc = X, y

        keep = np.ones(p, dtype=bool)
        lam = np.ones(p)
        var_y = np.var(yc)
        alpha = 1.0 / (var_y + 1e-10)
        coef = np.zeros(p)
        prev = coef.copy()
        for _ in range(self.max_iter):
            Xk = Xc[:, keep]
            lam_k = lam[keep]
            if Xk.shape[1] == 0:
                break
            sigma_inv = alpha * (Xk.T @ Xk) + np.diag(lam_k)
            sigma = np.linalg.inv(sigma_inv)
            mu = alpha * sigma @ (Xk.T @ yc)
            gamma = 1.0 - lam_k * np.diag(sigma)
            resid = yc - Xk @ mu
            lam_new = (gamma + 2.0 * self.lambda_1) / (mu**2 + 2.0 * self.lambda_2)
            alpha = (n - gamma.sum() + 2.0 * self.alpha_1) / (
                resid @ resid + 2.0 * self.alpha_2
            )
            lam[keep] = lam_new
            coef = np.zeros(p)
            coef[keep] = mu
            keep_new = lam < self.threshold_lambda
            if not keep_new.any():
                # keep at least the single most relevant weight
                keep_new[np.argmin(lam)] = True
            keep = keep_new
            if np.max(np.abs(coef - prev)) < self.tol:
                break
            prev = coef.copy()
        self.coef_ = coef
        self.lambda_ = lam
        self.alpha_ = float(alpha)
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self


class RANSACRegressor(BaseEstimator, RegressorMixin):
    """RANdom SAmple Consensus around a base linear estimator.

    sklearn defaults: minimal samples ``n_features + 1``, residual
    threshold = MAD of ``y``, up to ``max_trials=100`` random minimal
    fits; the consensus (inlier) set of the best trial is refit.
    """

    def __init__(
        self,
        estimator=None,
        min_samples: Optional[int] = None,
        residual_threshold: Optional[float] = None,
        max_trials: int = 100,
        random_state=None,
    ):
        self.estimator = estimator
        self.min_samples = min_samples
        self.residual_threshold = residual_threshold
        self.max_trials = max_trials
        self.random_state = random_state
        self.estimator_: Optional[BaseEstimator] = None
        self.inlier_mask_: Optional[np.ndarray] = None
        self.n_trials_: int = 0

    def fit(self, X, y) -> "RANSACRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        rng = resolve_rng(self.random_state)
        base = self.estimator if self.estimator is not None else LinearRegression()
        min_samples = self.min_samples or (p + 1)
        if min_samples > n:
            raise ValueError(
                f"min_samples={min_samples} exceeds sample count {n}"
            )
        if self.residual_threshold is None:
            threshold = float(np.median(np.abs(y - np.median(y))))
            if threshold == 0.0:
                threshold = 1e-9
        else:
            threshold = self.residual_threshold

        best_count = -1
        best_mask: Optional[np.ndarray] = None
        for trial in range(1, self.max_trials + 1):
            idx = rng.choice(n, size=min_samples, replace=False)
            model = clone(base)
            try:
                model.fit(X[idx], y[idx])
            except np.linalg.LinAlgError:
                continue
            residuals = np.abs(y - model.predict(X))
            mask = residuals < threshold
            count = int(mask.sum())
            if count > best_count:
                best_count = count
                best_mask = mask
            self.n_trials_ = trial
            if best_count == n:
                break
        if best_mask is None or best_count < min_samples:
            # degenerate data: fall back to fitting everything
            best_mask = np.ones(n, dtype=bool)
        self.inlier_mask_ = best_mask
        self.estimator_ = clone(base).fit(X[best_mask], y[best_mask])
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimator_")
        return self.estimator_.predict(X)


def _spatial_median(points: np.ndarray, max_iter: int = 300, tol: float = 1e-9) -> np.ndarray:
    """Geometric median via Weiszfeld's algorithm (Theil-Sen aggregation)."""
    median = points.mean(axis=0)
    for _ in range(max_iter):
        diff = points - median
        dist = np.linalg.norm(diff, axis=1)
        near = dist < 1e-12
        if near.any():
            return points[near][0]
        weights = 1.0 / dist
        new = (points * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(new - median) < tol:
            return new
        median = new
    return median


class TheilSenRegressor(BaseEstimator, RegressorMixin, _LinearPredictorMixin):
    """Theil-Sen estimator: spatial median of least-squares fits on random
    minimal subsets (``n_features + 1`` samples each).

    Robust to ~29% outliers in multiple dimensions; defaults follow
    sklearn (``max_subpopulation=1e4``).
    """

    def __init__(
        self,
        max_subpopulation: int = 10_000,
        n_subsamples: Optional[int] = None,
        random_state=None,
        fit_intercept: bool = True,
    ):
        self.max_subpopulation = int(max_subpopulation)
        self.n_subsamples = n_subsamples
        self.random_state = random_state
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "TheilSenRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        k = self.n_subsamples or (p + 1)
        if k > n:
            raise ValueError(f"n_subsamples={k} exceeds sample count {n}")
        rng = resolve_rng(self.random_state)
        n_exact = math.comb(n, k)
        design_cols = p + (1 if self.fit_intercept else 0)
        solutions = []
        if n_exact <= self.max_subpopulation:
            subsets = combinations(range(n), k)
        else:
            subsets = (
                rng.choice(n, size=k, replace=False)
                for _ in range(self.max_subpopulation)
            )
        for idx in subsets:
            idx = np.fromiter(idx, dtype=np.intp, count=k)
            Xi = X[idx]
            if self.fit_intercept:
                Xi = np.hstack([Xi, np.ones((k, 1))])
            beta, *_ = np.linalg.lstsq(Xi, y[idx], rcond=None)
            if np.all(np.isfinite(beta)):
                solutions.append(beta)
        if not solutions:
            raise ValueError("all Theil-Sen subsets were singular")
        beta = _spatial_median(np.asarray(solutions))
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self
