"""Transformer/estimator chaining (sklearn-style Pipeline).

The paper's protocol is itself a pipeline — StandardScaler into a
regressor with inverse-transformed outputs; :class:`Pipeline` packages
that pattern so experiments and user code can treat the composite as one
estimator (fit/predict/get_params/clone all work).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, RegressorMixin, clone

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator, RegressorMixin):
    """Chain of ``(name, transformer)`` steps ending in a regressor.

    Intermediate steps must expose ``fit``/``transform``; the final step
    must expose ``fit``/``predict``.  Steps are cloned on ``fit`` so a
    Pipeline instance is reusable like any estimator.
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]):
        if not steps:
            raise ValueError("pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names: {names}")
        for name, step in steps[:-1]:
            if not hasattr(step, "transform"):
                raise ValueError(
                    f"intermediate step {name!r} must implement transform"
                )
        last_name, last = steps[-1]
        if not hasattr(last, "predict"):
            raise ValueError(f"final step {last_name!r} must implement predict")
        self.steps = list(steps)
        self.fitted_steps_: List[Tuple[str, object]] = []

    def fit(self, X, y) -> "Pipeline":
        self.fitted_steps_ = []
        data = np.asarray(X, dtype=np.float64)
        for name, step in self.steps[:-1]:
            fitted = clone(step)
            data = fitted.fit(data).transform(data)
            self.fitted_steps_.append((name, fitted))
        last_name, last = self.steps[-1]
        fitted_last = clone(last)
        fitted_last.fit(data, y)
        self.fitted_steps_.append((last_name, fitted_last))
        return self

    def _transform(self, X) -> np.ndarray:
        data = np.asarray(X, dtype=np.float64)
        for _, step in self.fitted_steps_[:-1]:
            data = step.transform(data)
        return data

    def predict(self, X) -> np.ndarray:
        if not self.fitted_steps_:
            from .base import NotFittedError

            raise NotFittedError("Pipeline is not fitted")
        return self.fitted_steps_[-1][1].predict(self._transform(X))

    def named_step(self, name: str):
        for step_name, step in self.fitted_steps_ or self.steps:
            if step_name == name:
                return step
        raise KeyError(f"no step named {name!r}")


def make_pipeline(*steps) -> Pipeline:
    """Build a Pipeline with auto-generated step names."""
    named = [
        (f"{type(step).__name__.lower()}_{i}", step)
        for i, step in enumerate(steps)
    ]
    return Pipeline(named)
