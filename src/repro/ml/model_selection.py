"""Data splitting and time-series windowing.

Reproduces the paper's evaluation protocol (Sec. V.B):

1. split each bandwidth trace 75/25 *proportionally in time order*
   (``train_test_split(..., shuffle=False)``);
2. turn each split into a lag matrix — the 10 most recent measurements
   ``t_i .. t_{i-9}`` predict ``t_{i+1}``  (:func:`make_lag_matrix`);
3. fit on the train matrix, report RMSE on the test matrix.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from .base import clone, resolve_rng

__all__ = [
    "train_test_split",
    "make_lag_matrix",
    "KFold",
    "TimeSeriesSplit",
    "cross_val_score",
]


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    shuffle: bool = True,
    random_state=None,
):
    """Split arrays into train/test partitions.

    With ``shuffle=False`` (the paper's setting for its 75/25 split) the
    first ``1 - test_size`` fraction is training data, preserving time
    order.  Returns ``train, test`` pairs for each input, flattened in
    sklearn's order.
    """
    if not arrays:
        raise ValueError("need at least one array")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    n = len(np.asarray(arrays[0]))
    for a in arrays[1:]:
        if len(np.asarray(a)) != n:
            raise ValueError("all arrays must share the first dimension")
    n_test = max(1, int(round(n * test_size)))
    n_train = n - n_test
    if n_train < 1:
        raise ValueError(f"test_size={test_size} leaves no training samples")
    indices = np.arange(n)
    if shuffle:
        resolve_rng(random_state).shuffle(indices)
    train_idx, test_idx = indices[:n_train], indices[n_train:]
    out = []
    for a in arrays:
        a = np.asarray(a)
        out.append(a[train_idx])
        out.append(a[test_idx])
    return tuple(out)


def make_lag_matrix(
    series, n_lags: int = 10, horizon: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window design matrix for one-series-ahead regression.

    Row ``i`` of ``X`` is ``[s[i], s[i+1], ..., s[i+n_lags-1]]`` (oldest to
    newest) and the target is ``s[i + n_lags + horizon - 1]`` — with the
    paper's defaults (``n_lags=10, horizon=1``), ten historical values
    ``t_{i-9}..t_i`` predict ``t_{i+1}``.
    """
    s = np.asarray(series, dtype=np.float64).ravel()
    if n_lags < 1:
        raise ValueError("n_lags must be >= 1")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    n_rows = s.size - n_lags - horizon + 1
    if n_rows < 1:
        raise ValueError(
            f"series of length {s.size} too short for n_lags={n_lags}, horizon={horizon}"
        )
    # stride trick view, then copy once into a contiguous matrix
    idx = np.arange(n_lags)[None, :] + np.arange(n_rows)[:, None]
    X = s[idx]
    y = s[n_lags + horizon - 1 :][:n_rows]
    return X, y.copy()


class KFold:
    """K consecutive (optionally shuffled) folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(np.asarray(X))
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            resolve_rng(self.random_state).shuffle(indices)
        sizes = np.full(self.n_splits, n // self.n_splits)
        sizes[: n % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class TimeSeriesSplit:
    """Walk-forward splits: each fold trains on the past, tests on the next block."""

    def __init__(self, n_splits: int = 5):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits

    def split(self, X) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(np.asarray(X))
        n_folds = self.n_splits + 1
        if n < n_folds:
            raise ValueError(f"cannot walk-forward split {n} samples into {self.n_splits} folds")
        fold = n // n_folds
        indices = np.arange(n)
        for i in range(1, self.n_splits + 1):
            train_end = fold * i
            test_end = min(fold * (i + 1), n) if i < self.n_splits else n
            yield indices[:train_end], indices[train_end:test_end]


def cross_val_score(estimator, X, y, cv=None, scoring=None) -> np.ndarray:
    """Fit a cloned estimator per fold and collect scores (default R^2)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    splitter = cv if cv is not None else KFold(n_splits=5)
    scores: List[float] = []
    for train_idx, test_idx in splitter.split(X):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        if scoring is None:
            scores.append(model.score(X[test_idx], y[test_idx]))
        else:
            scores.append(scoring(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores)
