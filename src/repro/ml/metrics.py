"""Regression metrics.

The paper scores every model with RMSE (its Fig. 6 scatter plots RMSE on
WiFi vs RMSE on LTE); the rest are standard companions used by our tests
and ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "median_absolute_error",
    "max_error",
    "r2_score",
    "explained_variance_score",
    "mean_absolute_percentage_error",
]


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """RMSE — the paper's headline metric for the regressor tournament."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def median_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.median(np.abs(y_true - y_pred)))


def max_error(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.max(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1.0 is perfect, 0.0 is the mean model.

    Matches sklearn's convention for a constant target: 1.0 when the
    prediction is exact, 0.0 otherwise (rather than dividing by zero).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def explained_variance_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    var_y = float(np.var(y_true))
    if var_y == 0.0:
        return 1.0 if float(np.var(y_true - y_pred)) == 0.0 else 0.0
    return 1.0 - float(np.var(y_true - y_pred)) / var_y


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE with sklearn's epsilon guard against division by zero."""
    y_true, y_pred = _validate(y_true, y_pred)
    eps = np.finfo(np.float64).eps
    return float(np.mean(np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)))
