"""The paper's eighteen-regressor roster (Sec. V.A.2), R1..R18.

``REGRESSOR_SPECS`` maps each paper identifier to a factory that builds
the model with the paper's configuration ("executed with the default
hyperparameters").  The tournament (Fig. 6), the Hecate predictor and the
benchmarks all instantiate models through this registry so the roster is
defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .ensemble import (
    AdaBoostRegressor,
    BaggingRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
    RandomForestRegressor,
)
from .gaussian_process import GaussianProcessRegressor
from .linear_model import (
    ARDRegression,
    ElasticNet,
    HuberRegressor,
    Lasso,
    LinearRegression,
    RANSACRegressor,
    Ridge,
    SGDRegressor,
    TheilSenRegressor,
)
from .svm import SVR, LinearSVR
from .tree import DecisionTreeRegressor

__all__ = ["RegressorSpec", "REGRESSOR_SPECS", "make_regressor", "roster"]

_SEED = 42  # pinned so stochastic entrants are reproducible across runs


@dataclass(frozen=True)
class RegressorSpec:
    """One tournament entrant: paper id, short label, factory."""

    paper_id: str  # e.g. "R13"
    label: str  # e.g. "RFR"
    full_name: str
    factory: Callable[[], object]
    stochastic: bool = False


REGRESSOR_SPECS: Dict[str, RegressorSpec] = {
    spec.paper_id: spec
    for spec in [
        RegressorSpec(
            "R1", "AdaBoostR", "Ada Boost Regressor",
            lambda: AdaBoostRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec("R2", "ARDR", "ARD Regression", ARDRegression),
        RegressorSpec(
            "R3", "Bagging", "Bagging Regressor",
            lambda: BaggingRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec(
            "R4", "DTR", "Decision Tree Regressor",
            lambda: DecisionTreeRegressor(random_state=_SEED),
        ),
        RegressorSpec("R5", "ElasticNet", "Elastic Net", ElasticNet),
        RegressorSpec(
            "R6", "GBR", "Gradient Boosting Regressor",
            lambda: GradientBoostingRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec(
            "R7", "GPR", "Gaussian Process Regressor", GaussianProcessRegressor,
        ),
        RegressorSpec(
            "R8", "HGBR", "Histogram-based Gradient Boosting Regression",
            HistGradientBoostingRegressor,
        ),
        RegressorSpec("R9", "HuberR", "Huber Regressor", HuberRegressor),
        RegressorSpec("R10", "Lasso", "Lasso", Lasso),
        RegressorSpec("R11", "LR", "Linear Regression", LinearRegression),
        RegressorSpec(
            "R12", "RANSACR", "RANdom SAmple Consensus Regressor",
            lambda: RANSACRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec(
            "R13", "RFR", "Random Forest Regressor",
            lambda: RandomForestRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec("R14", "Ridge", "Ridge", Ridge),
        RegressorSpec(
            "R15", "SGDR", "Stochastic Gradient Descent Regressor",
            lambda: SGDRegressor(random_state=_SEED), stochastic=True,
        ),
        RegressorSpec(
            "R16", "SVM_Linear", "Support Vector Machine/Linear Kernel", LinearSVR,
        ),
        RegressorSpec(
            "R17", "SVM_RBF", "Support Vector Machine/RBF Kernel",
            lambda: SVR(kernel="rbf"),
        ),
        RegressorSpec(
            "R18", "TheilSenR", "Theil-Sen Regressor",
            lambda: TheilSenRegressor(random_state=_SEED), stochastic=True,
        ),
    ]
}


#: Post-paper extension entrants (Sec. VII future work); not part of the
#: Fig. 6 roster but runnable through the same pipeline/tournament.
EXTENSION_SPECS: Dict[str, RegressorSpec] = {}


def _register_extensions() -> None:
    from .neural import MLPRegressor

    EXTENSION_SPECS["X1"] = RegressorSpec(
        "X1", "MLP", "Multi-Layer Perceptron (future work: neural networks)",
        lambda: MLPRegressor(random_state=_SEED), stochastic=True,
    )


_register_extensions()


def make_regressor(paper_id: str):
    """Instantiate entrant ``paper_id`` (``"R1".."R18"`` or extension ``"X1"``)."""
    spec = REGRESSOR_SPECS.get(paper_id) or EXTENSION_SPECS.get(paper_id)
    if spec is None:
        raise KeyError(
            f"unknown regressor id {paper_id!r}; valid ids: "
            f"{sorted(REGRESSOR_SPECS) + sorted(EXTENSION_SPECS)}"
        )
    return spec.factory()


def roster() -> List[RegressorSpec]:
    """All entrants in paper order (R1..R18)."""
    return [REGRESSOR_SPECS[f"R{i}"] for i in range(1, 19)]
