"""Epsilon-insensitive Support Vector Regression (linear and RBF kernels).

Entrants R16 and R17 of the paper's tournament.  Rather than a full SMO
working-set solver we optimize the *kernelized primal* (Chapelle 2007):
with the representer theorem ``f(x) = sum_i beta_i k(x_i, x) + b`` the
epsilon-SVR objective

    min_{beta, b}  0.5 * beta^T K beta  +  C * sum_i L_eps(y_i - f(x_i))

is convex in ``(beta, b)``; we smooth the epsilon-insensitive hinge with a
small Huber rounding (smoothing width ``1e-3 * epsilon``-ish) and solve
with L-BFGS-B.  For the data scales in this repository the fitted function
matches libsvm closely while staying deterministic and dependency-free.
Defaults follow sklearn: ``C=1.0, epsilon=0.1, gamma="scale"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
)

__all__ = ["SVR", "LinearSVR"]


def _smoothed_eps_loss(r: np.ndarray, eps: float, mu: float):
    """Smoothed epsilon-insensitive loss and its derivative wrt r.

    ``L(r) = 0`` for ``|r| <= eps``; quadratic for ``eps < |r| <= eps+mu``;
    linear beyond.  ``mu -> 0`` recovers the exact hinge.
    """
    a = np.abs(r) - eps
    out = np.where(
        a <= 0.0,
        0.0,
        np.where(a <= mu, a**2 / (2.0 * mu), a - mu / 2.0),
    )
    grad_mag = np.where(a <= 0.0, 0.0, np.where(a <= mu, a / mu, 1.0))
    return out, grad_mag * np.sign(r)


class SVR(BaseEstimator, RegressorMixin):
    """Kernel epsilon-SVR.

    Parameters
    ----------
    kernel:
        ``"rbf"`` or ``"linear"``.
    C, epsilon:
        Usual SVR trade-off and tube width (sklearn defaults 1.0 / 0.1).
    gamma:
        RBF width; ``"scale"`` = ``1 / (n_features * X.var())`` like sklearn.
    """

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma="scale",
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unsupported kernel {kernel!r}")
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self.X_train_: Optional[np.ndarray] = None
        self.beta_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.gamma_: float = 1.0

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        aa = (A**2).sum(axis=1)[:, None]
        bb = (B**2).sum(axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (A @ B.T), 0.0)
        return np.exp(-self.gamma_ * d2)

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        if self.gamma == "auto":
            return 1.0 / X.shape[1]
        g = float(self.gamma)
        if g <= 0:
            raise ValueError("gamma must be positive")
        return g

    def fit(self, X, y) -> "SVR":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        self.gamma_ = self._resolve_gamma(X)
        K = self._kernel_matrix(X, X)
        # tiny ridge keeps the quadratic term positive definite
        K_reg = K + 1e-10 * np.eye(n)
        eps = self.epsilon
        mu = max(eps, 0.1) * 1e-2

        def objective(theta):
            beta = theta[:n]
            b = theta[n]
            f = K @ beta + b
            r = y - f
            loss, dloss_dr = _smoothed_eps_loss(r, eps, mu)
            reg = 0.5 * beta @ (K_reg @ beta)
            obj = reg + self.C * loss.sum()
            # dr/dbeta = -K, dr/db = -1
            grad_beta = K_reg @ beta - self.C * (K @ dloss_dr)
            grad_b = -self.C * dloss_dr.sum()
            return obj, np.concatenate([grad_beta, [grad_b]])

        theta0 = np.zeros(n + 1)
        theta0[n] = float(np.median(y))
        res = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.X_train_ = X
        self.beta_ = res.x[:n]
        self.intercept_ = float(res.x[n])
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "beta_")
        X = check_array(X)
        if X.shape[1] != self.X_train_.shape[1]:
            raise ValueError(
                f"expected {self.X_train_.shape[1]} features, got {X.shape[1]}"
            )
        return self._kernel_matrix(X, self.X_train_) @ self.beta_ + self.intercept_

    @property
    def support_(self) -> np.ndarray:
        """Indices with non-negligible dual-like coefficients."""
        check_is_fitted(self, "beta_")
        scale = np.abs(self.beta_).max() or 1.0
        return np.flatnonzero(np.abs(self.beta_) > 1e-6 * scale)


class LinearSVR(SVR):
    """Convenience alias for ``SVR(kernel="linear")`` (entrant R16)."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        super().__init__(
            kernel="linear", C=C, epsilon=epsilon, gamma="scale",
            max_iter=max_iter, tol=tol,
        )
