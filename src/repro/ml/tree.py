"""CART regression trees.

The decision tree is the substrate under five of the paper's eighteen
models (DTR itself plus Bagging, Random Forest, AdaBoost.R2 and Gradient
Boosting).  Split search is vectorized per node with prefix sums over the
sorted feature column — the textbook weighted-variance-reduction CART —
and prediction routes all samples level-by-level with numpy masks instead
of per-sample Python recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
    resolve_rng,
)

__all__ = ["DecisionTreeRegressor"]

_NO_FEATURE = -1


@dataclass
class _TreeBuffers:
    """Growable parallel arrays describing the tree; frozen after fit."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[float] = field(default_factory=list)

    def add(self) -> int:
        self.feature.append(_NO_FEATURE)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART with the weighted MSE criterion.

    Parameters mirror sklearn: ``max_depth=None`` grows until leaves are
    pure or smaller than ``min_samples_split``; ``max_features`` accepts
    ``None`` (all), an int, a float fraction, ``"sqrt"`` or ``"log2"`` and
    is what Random Forest uses for per-node feature subsampling.
    ``sample_weight`` support is required by AdaBoost.R2.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ):
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.feature_: Optional[np.ndarray] = None
        self.threshold_: Optional[np.ndarray] = None
        self.left_: Optional[np.ndarray] = None
        self.right_: Optional[np.ndarray] = None
        self.value_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None
        self.depth_: int = 0

    # ------------------------------------------------------------------ fit

    def _n_candidate_features(self, p: int) -> int:
        mf = self.max_features
        if mf is None:
            return p
        if mf == "sqrt":
            return max(1, int(np.sqrt(p)))
        if mf == "log2":
            return max(1, int(np.log2(p)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0, 1], got {mf}")
            return max(1, int(mf * p))
        if isinstance(mf, (int, np.integer)):
            if not 1 <= mf <= p:
                raise ValueError(f"max_features must be in [1, {p}], got {mf}")
            return int(mf)
        raise ValueError(f"unsupported max_features: {mf!r}")

    def _best_split(self, X, y, w, feature_ids):
        """Return (feature, threshold, gain) for the best weighted-MSE split.

        For each feature, sorts the column once and evaluates every valid
        split position with prefix sums; cost O(m log m) per feature.
        """
        m = y.shape[0]
        total_w = w.sum()
        total_wy = float(w @ y)
        total_wy2 = float(w @ (y * y))
        parent_impurity = total_wy2 - total_wy**2 / total_w

        best_gain = 1e-12  # require strictly positive gain
        best_feature = _NO_FEATURE
        best_threshold = 0.0
        leaf = self.min_samples_leaf
        for j in feature_ids:
            order = np.argsort(X[:, j], kind="stable")
            xs = X[order, j]
            ys = y[order]
            ws = w[order]
            cw = np.cumsum(ws)
            cwy = np.cumsum(ws * ys)
            cwy2 = np.cumsum(ws * ys * ys)
            # split after position i-1 (left gets i samples), i in [leaf, m-leaf]
            i = np.arange(leaf, m - leaf + 1)
            if i.size == 0:
                continue
            valid = xs[i] > xs[i - 1]
            i = i[valid]
            if i.size == 0:
                continue
            lw = cw[i - 1]
            rw = total_w - lw
            li = cwy2[i - 1] - cwy[i - 1] ** 2 / lw
            rv = total_wy - cwy[i - 1]
            ri = (total_wy2 - cwy2[i - 1]) - rv**2 / rw
            gain = parent_impurity - (li + ri)
            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best_feature = int(j)
                best_threshold = float((xs[i[k] - 1] + xs[i[k]]) / 2.0)
        return best_feature, best_threshold, best_gain

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        if sample_weight is None:
            w = np.ones(n)
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.shape[0] != n:
                raise ValueError("sample_weight length mismatch")
            if (w < 0).any() or w.sum() <= 0:
                raise ValueError("sample_weight must be non-negative with positive sum")
        self.n_features_in_ = p
        rng = resolve_rng(self.random_state)
        k_features = self._n_candidate_features(p)
        buffers = _TreeBuffers()
        self.depth_ = 0

        # explicit stack avoids recursion limits on deep trees
        root = buffers.add()
        stack = [(root, np.arange(n), 0)]
        while stack:
            node, idx, depth = stack.pop()
            self.depth_ = max(self.depth_, depth)
            yi = y[idx]
            wi = w[idx]
            buffers.value[node] = float((wi @ yi) / wi.sum())
            m = idx.shape[0]
            if (
                m < self.min_samples_split
                or m < 2 * self.min_samples_leaf
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(yi == yi[0])
            ):
                continue
            if k_features < p:
                feature_ids = rng.choice(p, size=k_features, replace=False)
            else:
                feature_ids = np.arange(p)
            feat, thresh, gain = self._best_split(X[idx], yi, wi, feature_ids)
            if feat == _NO_FEATURE:
                continue
            mask = X[idx, feat] <= thresh
            left_idx = idx[mask]
            right_idx = idx[~mask]
            if left_idx.size < self.min_samples_leaf or right_idx.size < self.min_samples_leaf:
                continue
            buffers.feature[node] = feat
            buffers.threshold[node] = thresh
            left = buffers.add()
            right = buffers.add()
            buffers.left[node] = left
            buffers.right[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self.feature_ = np.asarray(buffers.feature, dtype=np.intp)
        self.threshold_ = np.asarray(buffers.threshold)
        self.left_ = np.asarray(buffers.left, dtype=np.intp)
        self.right_ = np.asarray(buffers.right, dtype=np.intp)
        self.value_ = np.asarray(buffers.value)
        return self

    # -------------------------------------------------------------- predict

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "feature_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        nodes = np.zeros(X.shape[0], dtype=np.intp)
        active = self.feature_[nodes] != _NO_FEATURE
        while active.any():
            current = nodes[active]
            feat = self.feature_[current]
            go_left = X[active, feat] <= self.threshold_[current]
            nxt = np.where(go_left, self.left_[current], self.right_[current])
            nodes[active] = nxt
            active = self.feature_[nodes] != _NO_FEATURE
        return self.value_[nodes]

    @property
    def n_nodes_(self) -> int:
        check_is_fitted(self, "feature_")
        return int(self.feature_.shape[0])

    @property
    def n_leaves_(self) -> int:
        check_is_fitted(self, "feature_")
        return int((self.feature_ == _NO_FEATURE).sum())
