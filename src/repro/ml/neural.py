"""Feed-forward neural network regression (paper Sec. VII future work).

The paper's next step is "experimenting with more machine learning models
such as neural networks"; this module provides that extension: a from-
scratch multi-layer perceptron with ReLU/tanh activations, Adam updates,
mini-batching and early stopping — sklearn-MLPRegressor-like defaults so
it can slot straight into the Hecate pipeline (registered as extension
entrant ``"X1"`` in :data:`repro.ml.registry.EXTENSION_SPECS`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
    resolve_rng,
)

__all__ = ["MLPRegressor"]

_ACTIVATIONS = {
    "relu": (lambda z: np.maximum(z, 0.0), lambda z: (z > 0.0).astype(np.float64)),
    "tanh": (np.tanh, lambda z: 1.0 - np.tanh(z) ** 2),
    "identity": (lambda z: z, lambda z: np.ones_like(z)),
}


class MLPRegressor(BaseEstimator, RegressorMixin):
    """Multi-layer perceptron for regression (squared loss).

    Parameters mirror sklearn's: ``hidden_layer_sizes=(100,)``,
    ``activation="relu"``, Adam with ``learning_rate_init=1e-3``,
    ``alpha=1e-4`` L2 penalty, ``batch_size=min(200, n)``, early stopping
    on training loss after ``n_iter_no_change`` stale epochs.
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (100,),
        activation: str = "relu",
        alpha: float = 1e-4,
        learning_rate_init: float = 1e-3,
        max_iter: int = 200,
        batch_size: Optional[int] = None,
        tol: float = 1e-4,
        n_iter_no_change: int = 10,
        random_state=None,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {sorted(_ACTIVATIONS)}, got {activation!r}"
            )
        if any(h < 1 for h in hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.activation = activation
        self.alpha = alpha
        self.learning_rate_init = learning_rate_init
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.random_state = random_state
        self.coefs_: Optional[List[np.ndarray]] = None
        self.intercepts_: Optional[List[np.ndarray]] = None
        self.loss_curve_: Optional[List[float]] = None
        self.n_iter_: int = 0

    # ----------------------------------------------------------- internals

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return (pre-activations z, activations a) per layer."""
        act, _ = _ACTIVATIONS[self.activation]
        zs, activations = [], [X]
        a = X
        n_layers = len(self.coefs_)
        for i, (W, b) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = a @ W + b
            zs.append(z)
            a = z if i == n_layers - 1 else act(z)  # linear output layer
            activations.append(a)
        return zs, activations

    def fit(self, X, y) -> "MLPRegressor":
        X, y = check_X_y(X, y)
        n, p = X.shape
        rng = resolve_rng(self.random_state)
        sizes = [p, *self.hidden_layer_sizes, 1]
        # Glorot initialization
        self.coefs_ = []
        self.intercepts_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.coefs_.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.intercepts_.append(np.zeros(fan_out))

        batch = min(self.batch_size or 200, n)
        _, dact = _ACTIVATIONS[self.activation]
        # Adam state
        m_w = [np.zeros_like(W) for W in self.coefs_]
        v_w = [np.zeros_like(W) for W in self.coefs_]
        m_b = [np.zeros_like(b) for b in self.intercepts_]
        v_b = [np.zeros_like(b) for b in self.intercepts_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0

        self.loss_curve_ = []
        best_loss = np.inf
        stale = 0
        y_col = y.reshape(-1, 1)
        for epoch in range(1, self.max_iter + 1):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                Xb, yb = X[idx], y_col[idx]
                zs, activations = self._forward(Xb)
                out = activations[-1]
                err = out - yb
                epoch_loss += float((err**2).sum())
                # backprop
                delta = 2.0 * err / Xb.shape[0]
                grads_w = [None] * len(self.coefs_)
                grads_b = [None] * len(self.coefs_)
                for layer in range(len(self.coefs_) - 1, -1, -1):
                    grads_w[layer] = (
                        activations[layer].T @ delta + self.alpha * self.coefs_[layer]
                    )
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.coefs_[layer].T) * dact(zs[layer - 1])
                # Adam step
                t += 1
                lr = self.learning_rate_init * np.sqrt(1 - beta2**t) / (1 - beta1**t)
                for layer in range(len(self.coefs_)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    self.coefs_[layer] -= lr * m_w[layer] / (np.sqrt(v_w[layer]) + eps)
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    self.intercepts_[layer] -= lr * m_b[layer] / (
                        np.sqrt(v_b[layer]) + eps
                    )
            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            self.n_iter_ = epoch
            if epoch_loss > best_loss - self.tol:
                stale += 1
                if stale >= self.n_iter_no_change:
                    break
            else:
                stale = 0
            best_loss = min(best_loss, epoch_loss)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "coefs_")
        X = check_array(X)
        if X.shape[1] != self.coefs_[0].shape[0]:
            raise ValueError(
                f"expected {self.coefs_[0].shape[0]} features, got {X.shape[1]}"
            )
        _, activations = self._forward(X)
        return activations[-1].ravel()
