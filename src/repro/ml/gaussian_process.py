"""Gaussian process regression with a small composable kernel algebra.

GPR is entrant R7 of the paper's tournament — and its designated loser:
with default hyperparameters on standardized 10-lag inputs the RBF kernel
sees pairwise distances far beyond its unit length-scale, the Gram matrix
degenerates towards the identity, and the posterior mean reverts to the
prior (zero) on test points.  Inverse-transforming a near-zero prediction
lands at the feature mean, producing the off-scale RMSE the paper reports
(WiFi 34.75, LTE 52.43, excluded from the Fig. 6 scatter).  We reproduce
that failure mode faithfully rather than fixing it.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import optimize
from scipy.linalg import cho_solve, cholesky, solve_triangular

from .base import (
    BaseEstimator,
    RegressorMixin,
    check_is_fitted,
    check_X_y,
    check_array,
)

__all__ = [
    "Kernel",
    "RBF",
    "ConstantKernel",
    "WhiteKernel",
    "Sum",
    "Product",
    "GaussianProcessRegressor",
]


def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, clipped at zero."""
    aa = (A**2).sum(axis=1)[:, None]
    bb = (B**2).sum(axis=1)[None, :]
    return np.maximum(aa + bb - 2.0 * (A @ B.T), 0.0)


class Kernel:
    """Base kernel; subclasses implement ``__call__`` and theta handling.

    ``theta`` is the log-transformed vector of tunable parameters, matching
    sklearn so the marginal-likelihood optimizer works in log-space.
    """

    def __call__(self, A, B=None) -> np.ndarray:
        raise NotImplementedError

    def diag(self, A) -> np.ndarray:
        return np.diag(self(A))

    @property
    def theta(self) -> np.ndarray:
        raise NotImplementedError

    @theta.setter
    def theta(self, value) -> None:
        raise NotImplementedError

    @property
    def bounds(self) -> np.ndarray:
        raise NotImplementedError

    def __add__(self, other):
        return Sum(self, _as_kernel(other))

    def __radd__(self, other):
        return Sum(_as_kernel(other), self)

    def __mul__(self, other):
        return Product(self, _as_kernel(other))

    def __rmul__(self, other):
        return Product(_as_kernel(other), self)


def _as_kernel(value) -> "Kernel":
    if isinstance(value, Kernel):
        return value
    return ConstantKernel(float(value))


class RBF(Kernel):
    """Squared-exponential kernel ``exp(-d^2 / (2 l^2))``."""

    def __init__(self, length_scale: float = 1.0, length_scale_bounds=(1e-5, 1e5)):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self.length_scale_bounds = length_scale_bounds

    def __call__(self, A, B=None) -> np.ndarray:
        A = np.atleast_2d(A)
        B = A if B is None else np.atleast_2d(B)
        return np.exp(-_sq_dists(A, B) / (2.0 * self.length_scale**2))

    def diag(self, A) -> np.ndarray:
        return np.ones(np.atleast_2d(A).shape[0])

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value) -> None:
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        lo, hi = self.length_scale_bounds
        return np.array([[math.log(lo), math.log(hi)]])


class ConstantKernel(Kernel):
    """``k(x, x') = constant_value`` (scales other kernels in products)."""

    def __init__(self, constant_value: float = 1.0, constant_value_bounds=(1e-5, 1e5)):
        if constant_value <= 0:
            raise ValueError("constant_value must be positive")
        self.constant_value = float(constant_value)
        self.constant_value_bounds = constant_value_bounds

    def __call__(self, A, B=None) -> np.ndarray:
        A = np.atleast_2d(A)
        B = A if B is None else np.atleast_2d(B)
        return np.full((A.shape[0], B.shape[0]), self.constant_value)

    def diag(self, A) -> np.ndarray:
        return np.full(np.atleast_2d(A).shape[0], self.constant_value)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.constant_value)])

    @theta.setter
    def theta(self, value) -> None:
        self.constant_value = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        lo, hi = self.constant_value_bounds
        return np.array([[math.log(lo), math.log(hi)]])


class WhiteKernel(Kernel):
    """Independent noise: ``noise_level`` on the diagonal of K(X, X)."""

    def __init__(self, noise_level: float = 1.0, noise_level_bounds=(1e-5, 1e5)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self.noise_level_bounds = noise_level_bounds

    def __call__(self, A, B=None) -> np.ndarray:
        A = np.atleast_2d(A)
        if B is None:
            return self.noise_level * np.eye(A.shape[0])
        B = np.atleast_2d(B)
        return np.zeros((A.shape[0], B.shape[0]))

    def diag(self, A) -> np.ndarray:
        return np.full(np.atleast_2d(A).shape[0], self.noise_level)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise_level)])

    @theta.setter
    def theta(self, value) -> None:
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        lo, hi = self.noise_level_bounds
        return np.array([[math.log(lo), math.log(hi)]])


class _Binary(Kernel):
    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value) -> None:
        n1 = self.k1.theta.shape[0]
        self.k1.theta = value[:n1]
        self.k2.theta = value[n1:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.k1.bounds, self.k2.bounds])


class Sum(_Binary):
    def __call__(self, A, B=None) -> np.ndarray:
        return self.k1(A, B) + self.k2(A, B)

    def diag(self, A) -> np.ndarray:
        return self.k1.diag(A) + self.k2.diag(A)


class Product(_Binary):
    def __call__(self, A, B=None) -> np.ndarray:
        return self.k1(A, B) * self.k2(A, B)

    def diag(self, A) -> np.ndarray:
        return self.k1.diag(A) * self.k2.diag(A)


class GaussianProcessRegressor(BaseEstimator, RegressorMixin):
    """Exact GP regression via Cholesky factorization.

    Defaults reproduce the paper's "default hyperparameters" setting:
    kernel ``1.0 * RBF(1.0)`` with *no* marginal-likelihood optimization
    and jitter ``alpha=1e-10``.  Pass ``optimizer="fmin_l_bfgs_b"`` to
    enable type-II ML hyperparameter tuning (implemented, but off by
    default to match the paper's protocol).
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        alpha: float = 1e-10,
        optimizer: Optional[str] = None,
        n_restarts_optimizer: int = 0,
        normalize_y: bool = False,
        random_state=None,
    ):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.kernel = kernel
        self.alpha = alpha
        self.optimizer = optimizer
        self.n_restarts_optimizer = n_restarts_optimizer
        self.normalize_y = normalize_y
        self.random_state = random_state
        self.kernel_: Optional[Kernel] = None
        self.X_train_: Optional[np.ndarray] = None
        self.alpha_: Optional[np.ndarray] = None
        self._L: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    def _make_kernel(self) -> Kernel:
        if self.kernel is not None:
            import copy

            return copy.deepcopy(self.kernel)
        return ConstantKernel(1.0) * RBF(1.0)

    def log_marginal_likelihood(self, theta=None) -> float:
        check_is_fitted(self, "X_train_")
        kernel = self.kernel_
        if theta is not None:
            import copy

            kernel = copy.deepcopy(self.kernel_)
            kernel.theta = np.asarray(theta)
        K = kernel(self.X_train_)
        K[np.diag_indices_from(K)] += self.alpha
        try:
            L = cholesky(K, lower=True)
        except np.linalg.LinAlgError:
            return -np.inf
        y = self._y_train
        alpha_vec = cho_solve((L, True), y)
        return float(
            -0.5 * y @ alpha_vec
            - np.log(np.diag(L)).sum()
            - 0.5 * y.shape[0] * math.log(2.0 * math.pi)
        )

    def fit(self, X, y) -> "GaussianProcessRegressor":
        X, y = check_X_y(X, y)
        self.kernel_ = self._make_kernel()
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_n = (y - self._y_mean) / self._y_std
        self.X_train_ = X
        self._y_train = y_n

        if self.optimizer is not None and self.kernel_.theta.size:
            bounds = self.kernel_.bounds

            def neg_lml(theta):
                return -self.log_marginal_likelihood(theta)

            best_theta = self.kernel_.theta
            best_val = neg_lml(best_theta)
            starts = [self.kernel_.theta]
            rng = np.random.default_rng(self.random_state)
            for _ in range(self.n_restarts_optimizer):
                starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))
            for theta0 in starts:
                res = optimize.minimize(
                    neg_lml, theta0, method="L-BFGS-B", bounds=bounds
                )
                if res.fun < best_val:
                    best_val = res.fun
                    best_theta = res.x
            self.kernel_.theta = best_theta

        K = self.kernel_(X)
        K[np.diag_indices_from(K)] += self.alpha
        self._L = cholesky(K, lower=True)
        self.alpha_ = cho_solve((self._L, True), y_n)
        return self

    def predict(self, X, return_std: bool = False):
        check_is_fitted(self, "X_train_")
        X = check_array(X)
        K_star = self.kernel_(X, self.X_train_)
        mean = K_star @ self.alpha_
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = solve_triangular(self._L, K_star.T, lower=True)
        var = self.kernel_.diag(X) - (v**2).sum(axis=0)
        var = np.maximum(var, 0.0) * self._y_std**2
        return mean, np.sqrt(var)
