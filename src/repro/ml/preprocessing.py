"""Feature scaling.

The paper's pipeline (Sec. V.B) fits a ``StandardScaler`` on the training
split of the UQ traces, transforms the test split with the *training*
statistics, and inverse-transforms predictions back to Mbps before
computing RMSE.  We reproduce that utility exactly, plus a MinMaxScaler
used by ablation benches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseEstimator, NotFittedError, check_array

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Mirrors sklearn semantics: statistics come from ``fit`` data only;
    zero-variance features are left unscaled (divisor 1) rather than
    producing NaN.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def _check(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        return X

    def transform(self, X) -> np.ndarray:
        X = self._check(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        X = self._check(X)
        return X * self.scale_ + self.mean_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler(BaseEstimator):
    """Scale features into ``feature_range`` (default [0, 1])."""

    def __init__(self, feature_range=(0.0, 1.0)):
        lo, hi = feature_range
        if not hi > lo:
            raise ValueError(f"invalid feature_range {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None

    def fit(self, X) -> "MinMaxScaler":
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def _check(self, X) -> np.ndarray:
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        return X

    def transform(self, X) -> np.ndarray:
        X = self._check(X)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        return lo + (X - self.data_min_) * (hi - lo) / span

    def inverse_transform(self, X) -> np.ndarray:
        X = self._check(X)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        return self.data_min_ + (X - lo) * span / (hi - lo)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
