"""Estimator base classes and validation helpers for the mini-sklearn.

scikit-learn is unavailable offline, so :mod:`repro.ml` reimplements the
eighteen regressors the paper evaluates (Sec. V.A.2) behind the same
``fit`` / ``predict`` / ``get_params`` surface.  Keeping the API identical
means Hecate's predictor pipeline and the tournament harness read exactly
like the paper's sklearn-based code.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, Tuple

import numpy as np

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "clone",
    "check_array",
    "check_X_y",
    "check_is_fitted",
    "NotFittedError",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(X, *, ensure_2d: bool = True, name: str = "X") -> np.ndarray:
    """Coerce to a float64 ndarray and validate shape/finiteness."""
    arr = np.asarray(X, dtype=np.float64)
    if ensure_2d:
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError(f"{name} has 0 samples")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinity")
    return arr


def check_X_y(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a regression design matrix and 1-D target together."""
    X = check_array(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        y = y.ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]}"
        )
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinity")
    return X, y


def check_is_fitted(estimator, attribute: str) -> None:
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


class BaseEstimator:
    """Parameter introspection identical in spirit to sklearn's.

    Constructor arguments are hyperparameters; everything learned during
    ``fit`` is stored on attributes with a trailing underscore.  That split
    is what makes :func:`clone` safe.
    """

    @classmethod
    def _param_names(cls) -> Tuple[str, ...]:
        init = cls.__init__
        if init is object.__init__:
            return ()
        sig = inspect.signature(init)
        return tuple(
            p.name
            for p in sig.parameters.values()
            if p.name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        )

    def get_params(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        valid = set(self._param_names())
        for key, value in params.items():
            if key not in valid:
                raise ValueError(
                    f"invalid parameter {key!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Fresh unfitted copy with the same hyperparameters."""
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)


class RegressorMixin:
    """Adds the default R^2 ``score`` used across the suite."""

    def score(self, X, y) -> float:
        from .metrics import r2_score

        return r2_score(y, self.predict(X))

    def fit_predict(self, X, y) -> np.ndarray:
        return self.fit(X, y).predict(X)


def resolve_rng(random_state) -> np.random.Generator:
    """Accept None, an int seed, or a Generator (sklearn-style)."""
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)
