"""On-disk result cache: one JSON artifact per resolved sweep cell.

Artifacts are keyed by a stable content hash of everything that
determines a run's outcome: the fully-resolved :class:`Scenario` spec
(canonicalised so mapping order, tuple-vs-list and numpy scalars never
change the key), the backend, the seed, and :data:`CACHE_VERSION` — a
knob bumped whenever runner semantics change enough that old artifacts
must not be served.  Two sweeps that resolve to the same cell therefore
share one artifact, regardless of how their grids were written.

Artifacts are plain JSON (a header echoing what was run plus the
``ScenarioResult.to_dict()`` payload), written atomically so a killed
sweep never leaves a half-written file that poisons later runs; corrupt
or unreadable artifacts are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import numbers
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.scenarios import Scenario, ScenarioResult

from .spec import RunSpec

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "run_key",
    "scenario_fingerprint",
]

#: Bump when ScenarioRunner semantics change: stale artifacts from the
#: previous behaviour then miss instead of silently serving old numbers.
#: v2: directed link capacities — fluid results for bidirectional
#: workloads changed, so v1 artifacts must not be served.
#: v3: hybrid flow-class backend — Scenario grew classes/tags fields,
#: results carry sim_events, UdpFlow throughput is averaged over the
#: active window, and fluid epochs coalesce beyond max_epochs.
#: v4: columnar telemetry store — results carry telemetry_samples, and
#: the store's window() upper bound became inclusive.
#: v5: aggregate-mice hybrid mode — Scenario grew
#: classes.aggregate_background, results carry background_flows /
#: background_classes / background_mbps.
#: v6: pluggable execution backends — the backend axis accepts any
#: registered name (spec.BACKENDS grew "emulation-mock"), and the fluid
#: / hybrid delivered-rate summation became hash-seed independent
#: (sorted flow order), moving total_throughput_mbps/background_mbps by
#: one ulp on some scenarios.
#: v7: application-aware QoE — FlowRequest grew app_class, path probes
#: record jitter_ms/loss columns (telemetry_samples changed on every
#: DES/hybrid run), and results carry mean_qoe / qoe_flows /
#: qoe_per_class.
CACHE_VERSION = 7

#: Where sweeps cache by default (relative to the working directory).
DEFAULT_CACHE_DIR = Path(".sweep-cache")


def _canonical(obj: Any) -> Any:
    """JSON-dumpable canonical form with a stable serialisation.

    Dataclasses become tagged field dicts, mappings become sorted
    ``[key, value]`` pair lists (tuple keys — e.g. the link-delay
    overrides — are canonicalised too, which plain ``json.dumps`` cannot
    do), sequences become lists, and numpy scalars collapse to builtin
    numbers.  Equal specs therefore always hash equal.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        pairs = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        pairs.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {"__mapping__": pairs}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for cache keying"
    )


def scenario_fingerprint(scenario: Scenario) -> str:
    """Content hash of a fully-resolved scenario spec."""
    blob = json.dumps(
        _canonical(scenario), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_key(run: RunSpec) -> str:
    """Stable cache key of one sweep cell (hex sha256)."""
    blob = json.dumps(
        {
            "version": CACHE_VERSION,
            "scenario": _canonical(run.scenario),
            "backend": run.backend,
            "seed": int(run.seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Read/write counters for one cache lifetime (one sweep, usually)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none made)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits}/{self.lookups} lookups hit "
            f"({100.0 * self.hit_rate():.1f}%), {self.stores} stored"
        )


class ResultCache:
    """Directory of ``<run_key>.json`` artifacts with hit/miss stats."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.stats = CacheStats()

    def path(self, run: RunSpec) -> Path:
        return self.root / f"{run_key(run)}.json"

    def get(self, run: RunSpec) -> Optional[ScenarioResult]:
        """The cached result for this cell, or ``None`` on a miss.

        Unreadable and corrupt artifacts count as misses (the sweep will
        re-execute and overwrite them)."""
        try:
            payload = json.loads(self.path(run).read_text(encoding="utf-8"))
            result = ScenarioResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, run: RunSpec, result: ScenarioResult) -> Path:
        """Write one artifact atomically (write-then-rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(run)
        artifact = {
            "key": run_key(run),
            "cache_version": CACHE_VERSION,
            "scenario": run.scenario.name,
            "backend": run.backend,
            "seed": int(run.seed),
            "variant": run.variant,
            "scenario_fingerprint": scenario_fingerprint(run.scenario),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(artifact, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        self.stats.stores += 1
        return path
