"""Aggregation of sweep results: seed statistics and comparison tables.

One :class:`Aggregate` summarises every seed of one grid variant —
``(scenario, backend, policy-variant)`` — with mean/p50/p95/min/max per
metric.  Renderers turn a list of aggregates into the sweep's artifacts:
a human table, a machine JSON payload (sorted keys, no timing or host
state, so byte-identical across ``--jobs`` settings), CSV, and the
pairwise variant-comparison table.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.scenarios import ScenarioResult

from .spec import RunSpec

__all__ = [
    "METRICS",
    "Aggregate",
    "aggregate",
    "pairwise_table",
    "render_csv",
    "render_json",
    "render_table",
]

#: ScenarioResult metrics summarised across seeds, in artifact order.
METRICS: Tuple[str, ...] = (
    "total_throughput_mbps",
    "min_flow_mbps",
    "mean_latency_ms",
    "max_latency_ms",
    "drops",
    "migrations",
    "reconfigurations",
    "placed",
    "rejected",
)

#: Per-metric statistics, in artifact order.
STATS: Tuple[str, ...] = ("mean", "p50", "p95", "min", "max")


@dataclass(frozen=True)
class Aggregate:
    """Seed statistics for one ``(scenario, backend, variant)`` group."""

    scenario: str
    backend: str
    variant: str
    seeds: Tuple[int, ...]
    metrics: Dict[str, Dict[str, float]]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "variant": self.variant,
            "seeds": list(self.seeds),
            "metrics": {
                name: dict(stats) for name, stats in self.metrics.items()
            },
        }


def _stats(values: Sequence[float]) -> Dict[str, float]:
    data = np.asarray(values, dtype=float)
    return {
        "mean": float(data.mean()),
        "p50": float(np.percentile(data, 50)),
        "p95": float(np.percentile(data, 95)),
        "min": float(data.min()),
        "max": float(data.max()),
    }


def aggregate(
    runs: Sequence[RunSpec], results: Sequence[ScenarioResult]
) -> List[Aggregate]:
    """Group run results by (scenario, backend, variant) across seeds.

    Groups are emitted in sorted key order so the output is independent
    of grid-expansion order."""
    groups: Dict[Tuple[str, str, str], List[Tuple[RunSpec, ScenarioResult]]]
    groups = {}
    for run, result in zip(runs, results):
        key = (run.name, run.backend, run.variant)
        groups.setdefault(key, []).append((run, result))
    aggregates = []
    for group_key in sorted(groups):
        scenario, backend, variant = group_key
        cells = sorted(groups[group_key], key=lambda cell: cell[0].seed)
        metrics = {
            metric: _stats(
                [float(getattr(result, metric)) for _, result in cells]
            )
            for metric in METRICS
        }
        aggregates.append(
            Aggregate(
                scenario=scenario,
                backend=backend,
                variant=variant,
                seeds=tuple(run.seed for run, _ in cells),
                metrics=metrics,
            )
        )
    return aggregates


def render_table(aggregates: Sequence[Aggregate]) -> str:
    """The human-facing sweep summary (mean over seeds, p95 throughput)."""
    width = max([len(a.scenario) for a in aggregates] + [8])
    vwidth = max([len(a.variant) for a in aggregates] + [0])
    header = (
        f"{'scenario':<{width}}  {'backend':<8}"
        + (f"{'variant':<{vwidth + 2}}" if vwidth else "")
        + f"{'seeds':>6}{'Mbps mean':>11}{'Mbps p95':>10}"
        f"{'lat ms':>9}{'drops':>8}{'migr':>7}"
    )
    lines = [header, "-" * len(header)]
    for agg in aggregates:
        mbps = agg.metrics["total_throughput_mbps"]
        lines.append(
            f"{agg.scenario:<{width}}  {agg.backend:<8}"
            + (f"{agg.variant:<{vwidth + 2}}" if vwidth else "")
            + f"{len(agg.seeds):>6}{mbps['mean']:>11.2f}{mbps['p95']:>10.2f}"
            f"{agg.metrics['mean_latency_ms']['mean']:>9.2f}"
            f"{agg.metrics['drops']['mean']:>8.1f}"
            f"{agg.metrics['migrations']['mean']:>7.1f}"
        )
    return "\n".join(lines)


def render_json(
    runs: Sequence[RunSpec],
    results: Sequence[ScenarioResult],
    aggregates: Sequence[Aggregate],
) -> str:
    """The machine artifact: per-run results plus aggregates.

    Deliberately excludes wall-clock timing, job counts and cache stats
    so the same grid always serialises to the same bytes."""
    payload = {
        "runs": [
            {
                "scenario": run.name,
                "backend": run.backend,
                "seed": run.seed,
                "variant": run.variant,
                "result": result.to_dict(),
            }
            for run, result in zip(runs, results)
        ],
        "aggregates": [agg.to_dict() for agg in aggregates],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_csv(aggregates: Sequence[Aggregate]) -> str:
    """Flat CSV of the aggregates: one row per group, one column per
    (metric, statistic) pair."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["scenario", "backend", "variant", "n_seeds"]
        + [f"{metric}_{stat}" for metric in METRICS for stat in STATS]
    )
    for agg in aggregates:
        writer.writerow(
            [agg.scenario, agg.backend, agg.variant, len(agg.seeds)]
            + [
                repr(agg.metrics[metric][stat])
                for metric in METRICS
                for stat in STATS
            ]
        )
    return buffer.getvalue()


def pairwise_table(
    aggregates: Sequence[Aggregate],
    metric: str = "total_throughput_mbps",
) -> str:
    """Pairwise variant comparison per scenario.

    Every (backend, variant) pair that ran the same scenario is compared
    on the metric's seed mean — the table the sweep exists to produce:
    which policy/backend wins where, and by how much."""
    by_scenario: Dict[str, List[Aggregate]] = {}
    for agg in aggregates:
        by_scenario.setdefault(agg.scenario, []).append(agg)
    rows = []
    for scenario in sorted(by_scenario):
        group = by_scenario[scenario]
        for a, b in combinations(group, 2):
            mean_a = a.metrics[metric]["mean"]
            mean_b = b.metrics[metric]["mean"]
            rows.append(
                (
                    scenario,
                    _variant_id(a),
                    _variant_id(b),
                    mean_a,
                    mean_b,
                    mean_b - mean_a,
                )
            )
    if not rows:
        return f"pairwise {metric}: single variant, nothing to compare"
    width = max(len(r[0]) for r in rows)
    awidth = max([len(r[1]) for r in rows] + [len(r[2]) for r in rows] + [1])
    header = (
        f"{'scenario':<{width}}  {'A':<{awidth}}  {'B':<{awidth}}"
        f"{'A mean':>11}{'B mean':>11}{'B - A':>11}   ({metric})"
    )
    lines = [header, "-" * len(header)]
    for scenario, va, vb, mean_a, mean_b, delta in rows:
        lines.append(
            f"{scenario:<{width}}  {va:<{awidth}}  {vb:<{awidth}}"
            f"{mean_a:>11.2f}{mean_b:>11.2f}{delta:>+11.2f}"
        )
    return "\n".join(lines)


def _variant_id(agg: Aggregate) -> str:
    return f"{agg.backend}:{agg.variant}" if agg.variant else agg.backend
