"""Columnar sweep result store: one file per sweep, not per cell.

The per-cell JSON :class:`~repro.sweep.cache.ResultCache` is the right
shape for incremental caching, but a 100k-cell grid read back for
analysis wants a *columnar* layout.  :class:`SweepStore` flattens a
:class:`~repro.sweep.engine.SweepOutcome` into named columns — the run
axes (scenario, backend, seed, variant) plus every scalar
:class:`~repro.scenarios.result.ScenarioResult` field — and writes one
file:

- **parquet** via pyarrow when it is importable (the columnar format
  pandas/duckdb/polars read directly), or
- **columnar JSON** (``{"columns": {name: [values...]}}``) as the
  dependency-free fallback — same shape, greppable, loadable anywhere.

``format="auto"`` (the default) picks parquet when pyarrow is present,
JSON otherwise, so sweep tooling works identically on machines with and
without the optional dependency.  ``per_flow_mbps`` is intentionally not
a column (it is ragged); per-flow data stays in the cache artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Union

from repro.scenarios.result import ScenarioResult

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SweepOutcome

__all__ = ["SweepStore", "outcome_columns", "parquet_available"]

#: result fields that become columns: everything scalar except the run
#: axes (scenario/backend/seed), which come from the RunSpec — the
#: runner validates the result echoes them, so storing both is noise.
_RESULT_COLUMNS = tuple(
    name
    for name in ScenarioResult._FIELD_TYPES
    if name not in ("scenario", "backend", "seed")
)


def parquet_available() -> bool:
    """Whether the optional pyarrow dependency is importable."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


def outcome_columns(outcome: "SweepOutcome") -> Dict[str, List[Any]]:
    """Flatten one sweep outcome into ordered, same-length columns."""
    columns: Dict[str, List[Any]] = {
        "scenario": [],
        "backend": [],
        "seed": [],
        "variant": [],
    }
    for name in _RESULT_COLUMNS:
        columns[name] = []
    for run, result in zip(outcome.runs, outcome.results):
        columns["scenario"].append(run.scenario.name)
        columns["backend"].append(run.backend)
        columns["seed"].append(int(run.seed))
        columns["variant"].append(run.variant)
        for name in _RESULT_COLUMNS:
            columns[name].append(getattr(result, name))
    return columns


class SweepStore:
    """Write/read one sweep's results as a columnar file.

    Parameters
    ----------
    path:
        Target file.  ``.parquet`` and ``.json`` suffixes force a
        format; any other suffix follows ``format``.
    format:
        ``"parquet"``, ``"json"``, or ``"auto"`` (parquet when pyarrow
        is importable, else JSON).  Asking for parquet without pyarrow
        raises ``RuntimeError`` up front rather than failing mid-sweep.
    """

    def __init__(
        self, path: Union[str, Path], format: str = "auto"
    ) -> None:
        if format not in ("auto", "parquet", "json"):
            raise ValueError(
                f"format must be 'auto', 'parquet' or 'json', "
                f"got {format!r}"
            )
        self.path = Path(path)
        suffix = self.path.suffix.lower()
        if suffix == ".parquet":
            format = "parquet"
        elif suffix == ".json":
            format = "json"
        if format == "auto":
            format = "parquet" if parquet_available() else "json"
        if format == "parquet" and not parquet_available():
            raise RuntimeError(
                f"cannot write {self.path}: pyarrow is not installed; "
                "use a .json path (columnar JSON fallback) instead"
            )
        self.format = format

    def write(self, outcome: "SweepOutcome") -> Path:
        """Persist the outcome; returns the path written."""
        columns = outcome_columns(outcome)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.format == "parquet":
            import pyarrow as pa
            import pyarrow.parquet as pq

            table = pa.table(
                {name: pa.array(values) for name, values in columns.items()}
            )
            pq.write_table(table, self.path)
        else:
            payload = {
                "format": "repro-sweep-columnar",
                "rows": len(columns["scenario"]),
                "columns": columns,
            }
            self.path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return self.path

    def read(self) -> Dict[str, List[Any]]:
        """Load the columns back (either format)."""
        if self.format == "parquet":
            import pyarrow.parquet as pq

            table = pq.read_table(self.path)
            return {
                name: table.column(name).to_pylist()
                for name in table.column_names
            }
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        columns = payload.get("columns")
        if not isinstance(columns, dict):
            raise ValueError(
                f"{self.path} is not a columnar sweep store "
                "(missing 'columns')"
            )
        return columns

    def rows(self) -> List[Dict[str, Any]]:
        """Row-oriented view of :meth:`read` for simple consumers."""
        columns = self.read()
        names = list(columns)
        count = len(columns[names[0]]) if names else 0
        return [
            {name: columns[name][i] for name in names}
            for i in range(count)
        ]
