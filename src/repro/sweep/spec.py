"""Sweep specifications: a parameter grid over the scenario suite.

A :class:`SweepSpec` names the axes of a sweep — scenario names, seeds,
backend overrides and policy-override variants — plus scenario-level
overrides (horizon, warmup) applied to every cell.  :meth:`SweepSpec.expand`
resolves the grid into an ordered tuple of :class:`RunSpec` cells, each a
fully-resolved ``(Scenario, backend, seed)`` triple ready to execute,
cache-key, or ship to a worker process.

Expansion order is fixed (scenario -> policy variant -> backend -> seed)
so two expansions of the same spec are identical, which is what makes
parallel execution collectable in deterministic order and sweep output
byte-stable across ``--jobs`` settings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Tuple

from repro.backends.base import is_registered
from repro.scenarios import BACKENDS, Scenario, get_scenario

__all__ = ["RunSpec", "SweepSpec", "parse_seeds"]


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse a seed list: ``"0,1,2"``, ``"0-4"``, or a mix (``"0-2,7"``).

    Ranges are inclusive.  Duplicates are dropped, first occurrence wins,
    so the order written on the command line is the sweep order.
    """
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        lo, dash, hi = part.partition("-")
        try:
            values = range(int(lo), int(hi) + 1) if dash else (int(part),)
        except ValueError:
            raise ValueError(
                f"bad seed spec {part!r}; use e.g. '0,1,2' or '0-4'"
            ) from None
        if not values:
            raise ValueError(
                f"empty seed range {part!r}; did you mean '{hi}-{lo}'?"
            )
        for seed in values:
            if seed not in seeds:
                seeds.append(seed)
    if not seeds:
        raise ValueError(f"seed spec {text!r} names no seeds")
    return tuple(seeds)


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved cell of a sweep grid.

    ``variant`` tags which policy-override variant produced this cell
    (empty for the scenario's own policy); it is carried through results
    so aggregation and comparison tables can tell variants apart.
    """

    scenario: Scenario
    backend: str
    seed: int
    variant: str = ""

    @property
    def name(self) -> str:
        return self.scenario.name

    def label(self) -> str:
        """Human-readable cell id, e.g. ``ring-uniform[fluid] seed=2``."""
        tag = f" {self.variant}" if self.variant else ""
        return f"{self.name}[{self.backend}]{tag} seed={self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """The axes of a sweep over the scenario registry.

    Parameters
    ----------
    scenarios:
        Registry names (see ``repro scenarios list``).
    seeds:
        RNG seeds; every grid cell runs once per seed.
    backends:
        Backend overrides — any name in the execution-backend registry
        (``repro backends list``); empty means "each scenario's own
        backend".
    overrides:
        ``Scenario`` field overrides (``horizon``, ``warmup``, ...)
        applied to every scenario before expansion.
    policies:
        Policy-override variants: each mapping patches
        :class:`~repro.scenarios.spec.PolicySpec` fields and becomes one
        grid axis value (tagged in results); empty means "each
        scenario's own policy".
    """

    scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...] = (0,)
    backends: Tuple[str, ...] = ()
    overrides: Mapping[str, Any] = field(default_factory=dict)
    policies: Tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("sweep needs at least one scenario")
        if not self.seeds:
            raise ValueError("sweep needs at least one seed")
        for backend in self.backends:
            if backend not in BACKENDS and not is_registered(backend):
                raise ValueError(
                    f"backend must be one of {BACKENDS} or a registered "
                    f"execution backend, got {backend!r}"
                )

    def expand(self) -> Tuple[RunSpec, ...]:
        """Resolve the grid into ordered, fully-specified run cells."""
        runs: List[RunSpec] = []
        for name in self.scenarios:
            base = get_scenario(name)
            if self.overrides:
                base = base.with_overrides(**dict(self.overrides))
            if self.policies:
                variants = []
                for patch in self.policies:
                    items = sorted(patch.items())
                    tag = ",".join(f"{k}={v}" for k, v in items)
                    policy = dataclasses.replace(base.policy, **dict(patch))
                    patched = base.with_overrides(policy=policy)
                    variants.append((tag, patched))
            else:
                variants = [("", base)]
            for variant, scenario in variants:
                for backend in self.backends or (scenario.backend,):
                    for seed in self.seeds:
                        runs.append(
                            RunSpec(scenario, backend, int(seed), variant)
                        )
        return tuple(runs)
