"""Parallel scenario-sweep engine with on-disk result caching.

The layer above :class:`~repro.scenarios.runner.ScenarioRunner`: where
the runner executes *one* resolved scenario, this package executes
*grids* of them — every (scenario, seed, backend, policy-variant) cell —
fanned out over worker processes, served from a content-addressed JSON
cache when the same cell ran before, and reduced to seed statistics and
pairwise comparison tables:

>>> from repro.sweep import SweepEngine, SweepSpec, aggregate
>>> spec = SweepSpec(scenarios=("ring-uniform", "line-baseline"),
...                  seeds=(0, 1), backends=("fluid",),
...                  overrides={"horizon": 8.0, "warmup": 2.0})
>>> outcome = SweepEngine(spec, jobs=2).run()
>>> len(outcome.results)
4

From the shell: ``repro scenarios sweep`` / ``repro scenarios compare
--from-cache``.  Training and evaluation pipelines should sit on this
engine rather than looping over the runner themselves.
"""

from .aggregate import (
    METRICS,
    Aggregate,
    aggregate,
    pairwise_table,
    render_csv,
    render_json,
    render_table,
)
from .cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    run_key,
    scenario_fingerprint,
)
from .engine import SweepEngine, SweepOutcome, execute_run
from .executors import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    WorkQueueExecutor,
    make_executor,
)
from .spec import RunSpec, SweepSpec, parse_seeds
from .store import SweepStore, outcome_columns, parquet_available

__all__ = [
    "SweepSpec",
    "RunSpec",
    "parse_seeds",
    "SweepEngine",
    "SweepOutcome",
    "execute_run",
    "SweepExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "WorkQueueExecutor",
    "EXECUTOR_NAMES",
    "make_executor",
    "SweepStore",
    "outcome_columns",
    "parquet_available",
    "ResultCache",
    "CacheStats",
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "run_key",
    "scenario_fingerprint",
    "Aggregate",
    "aggregate",
    "METRICS",
    "pairwise_table",
    "render_table",
    "render_json",
    "render_csv",
]
