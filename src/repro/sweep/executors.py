"""Pluggable sweep executors: how pending cells actually get run.

The :class:`~repro.sweep.engine.SweepEngine` decides *what* to execute
(grid expansion, cache lookups, ordered collection); a
:class:`SweepExecutor` decides *how*: in-process (``serial``), over a
local process pool (``process``), or through a shared file-based work
queue (``work-queue``) that any number of independent worker
invocations — other terminals, other machines on a shared filesystem —
can drain cooperatively.

All executors receive the same fully-resolved
:class:`~repro.sweep.spec.RunSpec` cells and return
``ScenarioResult.to_dict()`` payloads in cell order, so sweep output is
byte-identical across executors (the determinism the ``--jobs 2`` vs
work-queue test pins).

The work-queue protocol (one shared directory)::

    <queue>/tasks/<run_key>.task     pending cells (pickled RunSpec)
    <queue>/claimed/<run_key>.task   cells some worker owns
    <queue>/results/<run_key>.json   finished payloads

Claiming is a single atomic ``os.rename`` from ``tasks/`` to
``claimed/`` — exactly one worker wins a cell, with no locks and no
coordinator.  Results are written write-then-rename, so a reader never
sees a torn payload.  Every invocation both enqueues what is missing
and drains what it can, then waits (bounded polling) for cells claimed
by *other* workers; a cell stranded in ``claimed/`` by a killed worker
is re-enqueued by the next invocation once the queue is otherwise
quiet.  Keys are :func:`~repro.sweep.cache.run_key`, so two sweeps
sharing cells share queue entries too.
"""

from __future__ import annotations

import abc
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .spec import RunSpec

__all__ = [
    "SweepExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "WorkQueueExecutor",
    "EXECUTOR_NAMES",
    "make_executor",
]

Payload = Dict[str, Any]


def _execute_cell(run: RunSpec) -> Payload:
    """One cell -> payload; the single execution path every executor
    funnels through (import deferred so unpickling workers stay cheap)."""
    from .engine import execute_run

    return execute_run(run)


class SweepExecutor(abc.ABC):
    """Strategy for executing resolved sweep cells.

    ``execute`` MUST return one payload per cell, in cell order —
    the engine zips them back onto grid indices.
    """

    #: registry name (``repro scenarios sweep --executor <name>``).
    name: str = ""

    @abc.abstractmethod
    def execute(self, cells: Sequence[RunSpec]) -> List[Payload]:
        """Run every cell, returning ``to_dict()`` payloads in order."""


class SerialExecutor(SweepExecutor):
    """In-process, one cell at a time — no pool, no pickling."""

    name = "serial"

    def execute(self, cells: Sequence[RunSpec]) -> List[Payload]:
        return [_execute_cell(cell) for cell in cells]


class ProcessExecutor(SweepExecutor):
    """Local ``ProcessPoolExecutor`` fan-out (the former built-in path)."""

    name = "process"

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def execute(self, cells: Sequence[RunSpec]) -> List[Payload]:
        if self.jobs == 1 or len(cells) == 1:
            return [_execute_cell(cell) for cell in cells]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(cells))
        ) as pool:
            # Executor.map preserves submission order, so collection is
            # deterministic even though completion order is not.
            return list(pool.map(_execute_cell, cells))


class WorkQueueExecutor(SweepExecutor):
    """File-based shared work queue; see the module docstring.

    Parameters
    ----------
    queue_dir:
        The shared directory.  Created if missing; all invocations
        draining one sweep must point at the same path.
    poll_interval:
        Seconds slept between polls while waiting for cells owned by
        other workers.
    max_polls:
        Bound on waiting: after this many empty polls the executor
        raises ``TimeoutError`` naming the unfinished cells.  Iteration
        counting, not wall-clock — the budget is
        ``max_polls * poll_interval`` seconds of pure waiting.
    """

    name = "work-queue"

    def __init__(
        self,
        queue_dir: Union[str, Path],
        poll_interval: float = 0.2,
        max_polls: int = 9000,
    ):
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if max_polls < 1:
            raise ValueError("max_polls must be >= 1")
        self.queue_dir = Path(queue_dir)
        self.poll_interval = float(poll_interval)
        self.max_polls = int(max_polls)

    # ------------------------------------------------------------- layout

    @property
    def tasks_dir(self) -> Path:
        return self.queue_dir / "tasks"

    @property
    def claimed_dir(self) -> Path:
        return self.queue_dir / "claimed"

    @property
    def results_dir(self) -> Path:
        return self.queue_dir / "results"

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    # ----------------------------------------------------------- protocol

    def enqueue(self, cells: Sequence[RunSpec]) -> int:
        """Add tasks for every cell without a result yet; returns the
        number enqueued.  Idempotent across invocations: a key already
        pending, claimed, or finished is not re-added."""
        from .cache import run_key

        for directory in (self.tasks_dir, self.claimed_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        added = 0
        for cell in cells:
            key = run_key(cell)
            task = self.tasks_dir / f"{key}.task"
            if (
                self._result_path(key).exists()
                or task.exists()
                or (self.claimed_dir / f"{key}.task").exists()
            ):
                continue
            tmp = task.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(pickle.dumps(cell))
            os.replace(tmp, task)
            added += 1
        return added

    def drain(self) -> int:
        """Claim and execute tasks until the queue is empty; returns the
        number of cells this invocation executed.  Safe to call from any
        number of workers concurrently."""
        executed = 0
        while True:
            claimed = self._claim_one()
            if claimed is None:
                return executed
            key, cell = claimed
            payload = _execute_cell(cell)
            tmp = self._result_path(key).with_suffix(
                f".tmp.{os.getpid()}"
            )
            tmp.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self._result_path(key))
            (self.claimed_dir / f"{key}.task").unlink(missing_ok=True)
            executed += 1

    def _claim_one(self) -> Optional[Tuple[str, RunSpec]]:
        """Atomically claim one pending task, or ``None`` if none left.

        ``os.rename`` into ``claimed/`` is the mutual exclusion: the
        loser of a race gets ``FileNotFoundError`` and tries the next."""
        for task in sorted(self.tasks_dir.glob("*.task")):
            target = self.claimed_dir / task.name
            try:
                os.rename(task, target)
            except OSError:
                continue  # another worker won this cell
            cell = pickle.loads(target.read_bytes())
            return task.stem, cell
        return None

    def _recover_stranded(self) -> int:
        """Re-enqueue cells stranded in ``claimed/`` (a worker died
        mid-cell).  Only called when ``tasks/`` is empty and results are
        still missing, so a *live* worker's claim is only disturbed
        after the full polling budget of quiet."""
        recovered = 0
        for stale in sorted(self.claimed_dir.glob("*.task")):
            if self._result_path(stale.stem).exists():
                stale.unlink(missing_ok=True)
                continue
            try:
                os.rename(stale, self.tasks_dir / stale.name)
            except OSError:
                continue
            recovered += 1
        return recovered

    def execute(self, cells: Sequence[RunSpec]) -> List[Payload]:
        """Enqueue missing cells, drain what this worker can claim, then
        wait for cells other workers own; payloads in cell order."""
        from .cache import run_key

        keys = [run_key(cell) for cell in cells]
        self.enqueue(cells)
        self.drain()
        # cells claimed by other invocations: bounded polling, counted in
        # iterations (wall-clock reads are banned in deterministic code)
        polls = 0
        recovery_attempted = False
        while True:
            missing = [
                key for key in keys if not self._result_path(key).exists()
            ]
            if not missing:
                break
            polls += 1
            if polls > self.max_polls:
                if not recovery_attempted and self._recover_stranded():
                    recovery_attempted = True
                    polls = 0
                    self.drain()
                    continue
                raise TimeoutError(
                    f"work queue {self.queue_dir}: {len(missing)} cells "
                    "never finished (dead worker?); pending keys: "
                    + ", ".join(sorted(missing)[:4])
                )
            time.sleep(self.poll_interval)
            self.drain()  # pick up anything re-enqueued meanwhile
        payloads: List[Payload] = []
        for key in keys:
            text = self._result_path(key).read_text(encoding="utf-8")
            payloads.append(json.loads(text))
        return payloads


#: executor names accepted by ``--executor`` (work-queue needs a dir).
EXECUTOR_NAMES = ("serial", "process", "work-queue")


def make_executor(
    name: str,
    jobs: int = 1,
    queue_dir: Optional[Union[str, Path]] = None,
) -> SweepExecutor:
    """Build the named executor from CLI-level knobs."""
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(jobs=max(jobs, 1))
    if name == "work-queue":
        if queue_dir is None:
            raise ValueError(
                "the work-queue executor needs --queue-dir (the shared "
                "sweep directory workers drain together)"
            )
        return WorkQueueExecutor(queue_dir)
    raise ValueError(
        f"unknown executor {name!r}; choose from {', '.join(EXECUTOR_NAMES)}"
    )
