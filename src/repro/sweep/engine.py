"""SweepEngine: fan a resolved sweep grid out over worker processes.

The engine expands a :class:`~repro.sweep.spec.SweepSpec`, serves every
cell it can from the :class:`~repro.sweep.cache.ResultCache`, and hands
the remainder to a pluggable :class:`~repro.sweep.executors.
SweepExecutor` — in-process serial, a local process pool, or the
file-based shared work queue (N independent invocations draining one
sweep directory).  Three properties make every executor interchangeable
with serial execution:

- **deterministic per-run seeding** — each cell carries its own explicit
  seed into :class:`~repro.scenarios.runner.ScenarioRunner`, so a run's
  outcome depends only on its resolved spec, never on which worker (or
  how many) executed it;
- **ordered collection** — results come back in grid-expansion order no
  matter the completion order, so downstream aggregation sees the same
  sequence either way;
- **builtin-only transport** — workers return
  ``ScenarioResult.to_dict()`` payloads, the same representation the
  cache stores, so a result is identical whether it crossed a process
  boundary, a JSON file, or neither.

Executed cells are written back to the cache, making a repeated sweep
(or any sweep sharing cells with an earlier one) nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios import ScenarioResult, ScenarioRunner

from .cache import ResultCache
from .executors import ProcessExecutor, SerialExecutor, SweepExecutor
from .spec import RunSpec, SweepSpec

__all__ = ["SweepEngine", "SweepOutcome", "execute_run"]


def execute_run(run: RunSpec) -> Dict[str, object]:
    """Execute one sweep cell; the worker entry point.

    Returns the ``to_dict()`` payload rather than the dataclass so the
    parent rebuilds results through the exact code path the cache uses.
    """
    runner = ScenarioRunner(run.scenario, backend=run.backend, seed=run.seed)
    return runner.run().to_dict()


@dataclass(frozen=True)
class SweepOutcome:
    """Everything one engine pass produced, in grid order."""

    runs: Tuple[RunSpec, ...]
    results: Tuple[ScenarioResult, ...]
    cache_hits: int
    executed: int
    jobs: int

    def stats_line(self) -> str:
        """One-line cache/executor accounting, e.g. for ``--stats``."""
        total = len(self.runs)
        rate = 100.0 * self.cache_hits / total if total else 0.0
        return (
            f"sweep stats: {total} runs, {self.cache_hits} cache hits "
            f"({rate:.1f}%), {self.executed} executed, jobs={self.jobs}"
        )


class SweepEngine:
    """Execute a sweep grid with caching and optional parallelism.

    Parameters
    ----------
    spec:
        The grid to run.
    jobs:
        Worker processes; ``1`` executes serially in-process (no pool,
        no pickling) and any higher value fans pending cells out while
        preserving result order.  Ignored when ``executor`` is given.
    cache:
        Result cache, or ``None`` to neither read nor write artifacts.
    refresh:
        Skip cache reads but still write back — the ``--refresh`` escape
        hatch for artifacts invalidated by something outside the key.
    executor:
        Explicit :class:`~repro.sweep.executors.SweepExecutor`; ``None``
        keeps the historical ``jobs`` behaviour (serial for 1, process
        pool above).
    """

    def __init__(
        self,
        spec: SweepSpec,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        refresh: bool = False,
        executor: Optional[SweepExecutor] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.jobs = jobs
        self.cache = cache
        self.refresh = refresh
        if executor is None:
            executor = (
                SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
            )
        self.executor = executor

    def run(
        self, log: Optional[Callable[[str], None]] = None
    ) -> SweepOutcome:
        """Expand, serve from cache, execute the rest, collect in order."""
        runs = self.spec.expand()
        results: List[Optional[ScenarioResult]] = [None] * len(runs)
        pending: List[int] = []
        for index, run in enumerate(runs):
            cached = (
                self.cache.get(run)
                if self.cache is not None and not self.refresh
                else None
            )
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)
        if log:
            log(
                f"sweep: {len(runs)} cells, {len(runs) - len(pending)} "
                f"cached, executing {len(pending)} with jobs={self.jobs}"
            )
        if pending:
            payloads = self._execute_pending(runs, pending)
            for index, payload in zip(pending, payloads):
                result = ScenarioResult.from_dict(payload)
                results[index] = result
                if self.cache is not None:
                    self.cache.put(runs[index], result)
                if log:
                    log(f"  done {runs[index].label()}")
        return SweepOutcome(
            runs=runs,
            results=tuple(results),
            cache_hits=len(runs) - len(pending),
            executed=len(pending),
            jobs=self.jobs,
        )

    def _execute_pending(
        self, runs: Tuple[RunSpec, ...], pending: Sequence[int]
    ) -> List[Dict[str, object]]:
        """Payloads for the pending cells, in ``pending`` order."""
        cells = [runs[index] for index in pending]
        return self.executor.execute(cells)
