"""Command-line entry point: regenerate any paper figure from the shell.

``python -m repro list`` shows the available experiments;
``python -m repro fig11`` runs one and prints its terminal report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> str:
    from repro.experiments import fig1_polka_example as m

    return m.summary(m.run())


def _fig2() -> str:
    from repro.experiments import fig2_minmax_lp as m

    return m.summary(m.run())


def _fig4() -> str:
    from repro.experiments import fig4_closed_loop as m

    return m.summary(m.run())


def _fig5() -> str:
    from repro.experiments import fig5_dataset as m

    return m.summary(m.run())


def _fig6() -> str:
    from repro.experiments import fig6_regressor_tournament as m

    return m.summary(m.run())


def _fig7() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig7(), "Fig. 7")


def _fig8() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig8(), "Fig. 8")


def _fig9() -> str:
    from repro.experiments import fig9_topology as m

    return m.summary(m.run())


def _fig11() -> str:
    from repro.experiments import fig11_latency_migration as m

    return m.summary(m.run())


def _fig12() -> str:
    from repro.experiments import fig12_flow_aggregation as m

    return m.summary(m.run())


EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "fig1": ("PolKA CRT worked example (exact)", _fig1),
    "fig2": ("Eq. (1)-(3) TE optimizations", _fig2),
    "fig4": ("framework sequence replay (Figs. 3-4)", _fig4),
    "fig5": ("WiFi/LTE dataset (Fig. 5b)", _fig5),
    "fig6": ("18-regressor tournament (~1 min)", _fig6),
    "fig7": ("best model observed-vs-predicted", _fig7),
    "fig8": ("worst model observed-vs-predicted", _fig8),
    "fig9": ("testbed + Fig. 10 config inventory", _fig9),
    "fig11": ("agile latency migration (~2 min sim)", _fig11),
    "fig12": ("multi-path flow aggregation (~1 min sim)", _fig12),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Framework for Integrating ML "
        "Methods for Path-Aware Source Routing'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'list'/'all'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (description, _) in EXPERIMENTS.items():
            print(f"{key:<{width}}  {description}")
        return 0
    if args.experiment == "all":
        for key, (_, runner) in EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n{key}\n{'=' * 72}")
            print(runner())
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from: {', '.join(EXPERIMENTS)} (or 'list'/'all')",
            file=sys.stderr,
        )
        return 2
    print(EXPERIMENTS[args.experiment][1]())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
