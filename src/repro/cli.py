"""Command-line entry point: paper figures and the scenario suite.

Figure replays (the original interface)::

    repro list          # available experiments
    repro fig11         # run one, print its terminal report
    repro all           # run everything

Scenario suite (see :mod:`repro.scenarios`)::

    repro scenarios list
    repro scenarios run ring-link-flap [--backend des|fluid|hybrid]
                                       [--seed N] [--horizon S] [--warmup S]
    repro scenarios run scale-fat-tree-2k       # 2k flows, hybrid backend
    repro scenarios compare line-baseline ring-uniform   # or --all

Sweeps (see :mod:`repro.sweep`) — parameter grids over the registry,
fanned out over worker processes and served from an on-disk cache::

    repro scenarios sweep ring-uniform line-baseline \
        --seeds 0-4 --backend fluid --jobs 4 --stats --json sweep.json
    repro scenarios compare --all --from-cache

Execution backends (see :mod:`repro.backends`) — the registry behind
every ``--backend`` axis::

    repro backends list

Service mode (see :mod:`repro.framework.service_mode`) — open-loop
churn against the framework with steady-state SLO metrics::

    repro service list
    repro service run fat-tree-churn --rate 500 --duration 60 --seed 1
    repro service run ring-steady --json -

Objectives (see :mod:`repro.hecate.objectives`) — the pluggable
registry behind every ``--objective`` flag::

    repro objectives list
    repro scenarios run qoe-mixed-steady --objective max_qoe

Static analysis (see :mod:`repro.analysis`) — the determinism &
hot-path invariant checker, rule ids RL001-RL008
(``docs/DETERMINISM.md`` is the catalog)::

    repro lint --list-rules
    repro lint src --json repro-lint.json
    repro lint src/repro/framework --select RL008

``repro`` is installed as a console script by setup.py; ``python -m
repro`` is equivalent.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, Tuple

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> str:
    from repro.experiments import fig1_polka_example as m

    return m.summary(m.run())


def _fig2() -> str:
    from repro.experiments import fig2_minmax_lp as m

    return m.summary(m.run())


def _fig4() -> str:
    from repro.experiments import fig4_closed_loop as m

    return m.summary(m.run())


def _fig5() -> str:
    from repro.experiments import fig5_dataset as m

    return m.summary(m.run())


def _fig6() -> str:
    from repro.experiments import fig6_regressor_tournament as m

    return m.summary(m.run())


def _fig7() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig7(), "Fig. 7")


def _fig8() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig8(), "Fig. 8")


def _fig9() -> str:
    from repro.experiments import fig9_topology as m

    return m.summary(m.run())


def _fig11() -> str:
    from repro.experiments import fig11_latency_migration as m

    return m.summary(m.run())


def _fig12() -> str:
    from repro.experiments import fig12_flow_aggregation as m

    return m.summary(m.run())


EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "fig1": ("PolKA CRT worked example (exact)", _fig1),
    "fig2": ("Eq. (1)-(3) TE optimizations", _fig2),
    "fig4": ("framework sequence replay (Figs. 3-4)", _fig4),
    "fig5": ("WiFi/LTE dataset (Fig. 5b)", _fig5),
    "fig6": ("18-regressor tournament (~1 min)", _fig6),
    "fig7": ("best model observed-vs-predicted", _fig7),
    "fig8": ("worst model observed-vs-predicted", _fig8),
    "fig9": ("testbed + Fig. 10 config inventory", _fig9),
    "fig11": ("agile latency migration (~2 min sim)", _fig11),
    "fig12": ("multi-path flow aggregation (~1 min sim)", _fig12),
}


def _scenario_with_overrides(name: str, args: argparse.Namespace):
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if getattr(args, "objective", None) is not None:
        overrides["policy"] = dataclasses.replace(
            scenario.policy, objective=args.objective
        )
    return scenario.with_overrides(**overrides) if overrides else scenario


def _scenarios_list() -> int:
    from repro.scenarios import list_scenarios

    scenarios = list_scenarios()
    width = max(len(s.name) for s in scenarios)
    header = (
        f"{'name':<{width}}  {'topology':<17}{'traffic':<14}"
        f"{'failures':<10}{'backend':<8}"
    )
    print(header)
    print("-" * len(header))
    for s in scenarios:
        # dynamic scenarios carry a phase timeline instead of one pattern
        traffic = f"phased:{len(s.phases)}" if s.phases else s.traffic.pattern
        print(
            f"{s.name:<{width}}  {s.topology.kind:<17}"
            f"{traffic:<14}{s.failures.kind:<10}{s.backend:<8}"
        )
        print(f"{'':<{width}}    {s.description}")
    return 0


class _UserError(Exception):
    """A bad name or override from the command line (not an internal bug)."""


def _backend_choices() -> Tuple[str, ...]:
    """Registered execution-backend names, for ``--backend`` choices.

    Sourced from the registry (not a hard-coded tuple) so plugin
    backends registered before parser construction show up in
    ``--help`` and pass argparse validation automatically.
    """
    from repro.backends import backend_names

    return backend_names()


def _objective_choices() -> Tuple[str, ...]:
    """Registered objective names, for ``--objective`` choices.

    Sourced from the objective registry (see
    :mod:`repro.hecate.objectives`) for the same reason as
    :func:`_backend_choices`: plugin objectives registered before parser
    construction show up in ``--help`` and validate automatically.
    """
    from repro.hecate.objectives import objective_names

    return objective_names()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _resolve(name: str, args: argparse.Namespace):
    """Scenario lookup + overrides, with user mistakes wrapped so the
    CLI can report them cleanly while internal errors still traceback."""
    try:
        return _scenario_with_overrides(name, args)
    except (KeyError, ValueError) as exc:
        raise _UserError(exc.args[0]) from exc


def _profiled_run(runner, profile_path: str) -> "object":
    """Run one scenario under cProfile and print where the time went.

    Prints the top functions by internal time (the hot loops) and by
    cumulative time (the call paths), then — when ``profile_path`` is
    not ``-`` — dumps the raw stats for ``pstats`` / ``snakeviz``.
    Profiling inflates the wall clock of call-heavy code (every event
    callback pays the tracer), so treat the *shape* as truth and the
    seconds as relative; measure real wall clock without --profile.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = runner.run()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs()
    print("--- top 20 by internal time (the hot loops) ---")
    stats.sort_stats("tottime").print_stats(20)
    print("--- top 20 by cumulative time (the call paths) ---")
    stats.sort_stats("cumulative").print_stats(20)
    if profile_path != "-":
        profiler.dump_stats(profile_path)
        print(f"raw profile written to {profile_path} "
              "(inspect with python -m pstats)")
    return result


def _scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner

    scenario = _resolve(args.name, args)
    runner = ScenarioRunner(scenario, backend=args.backend, seed=args.seed)
    if args.profile is not None:
        result = _profiled_run(runner, args.profile)
    else:
        result = runner.run()
    print(result.summary())
    return 0


def _parse_policy(text: str):
    """``"k=v,k=v"`` -> a PolicySpec-override mapping with typed values."""
    patch = {}
    for item in text.split(","):
        key, eq, raw = item.strip().partition("=")
        if not eq or not key:
            raise _UserError(
                f"bad policy override {item!r}; use e.g. "
                "'reoptimize_every=5.0' or 'objective=<name>' "
                f"(objectives: {', '.join(_objective_choices())}; "
                "see 'repro objectives list')"
            )
        if key == "objective" and raw not in _objective_choices():
            # fail fast at parse time, exactly like the --objective
            # flag's choices= — not deep inside a sweep cell where the
            # run would just fail every placement
            raise _UserError(
                f"unknown objective {raw!r}; choose from "
                f"{', '.join(_objective_choices())} "
                "(see 'repro objectives list')"
            )
        value: object = raw
        if raw.lower() == "none":
            value = None
        else:
            for cast in (int, float):
                try:
                    value = cast(raw)
                    break
                except ValueError:
                    pass
        patch[key] = value
    return patch


def _sweep_names(args: argparse.Namespace):
    from repro.scenarios import get_scenario, list_scenarios

    names = list(args.names or [])
    if args.all or not names:
        # the scale tier (thousands of flows, hybrid-backend sized) must
        # be named explicitly; --all is the small-suite cross product
        return [s.name for s in list_scenarios(include_scale=False)]
    for name in names:  # fail fast on typos, before any run executes
        try:
            get_scenario(name)
        except KeyError as exc:
            raise _UserError(exc.args[0]) from exc
    return names


def _result_cache(args: argparse.Namespace):
    from repro.sweep import ResultCache

    return ResultCache(args.cache_dir) if args.cache_dir else ResultCache()


def _sweep_overrides(args: argparse.Namespace):
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    return overrides


def _scenarios_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        ResultCache,
        SweepEngine,
        SweepSpec,
        SweepStore,
        aggregate,
        make_executor,
        pairwise_table,
        parse_seeds,
        render_csv,
        render_json,
        render_table,
    )

    try:
        seeds = parse_seeds(args.seeds)
        policies = [dict(_parse_policy(p)) for p in args.policy or ()]
        if args.objective is not None:
            # --objective is the base for every cell; an explicit
            # objective= in a --policy axis value still wins
            policies = [
                {"objective": args.objective, **patch}
                for patch in (policies or [{}])
            ]
        spec = SweepSpec(
            scenarios=tuple(_sweep_names(args)),
            seeds=seeds,
            backends=tuple(args.backend or ()),
            overrides=_sweep_overrides(args),
            policies=tuple(policies),
        )
        spec.expand()  # surface bad overrides (e.g. --horizon -5) now,
        # as a clean user error rather than a traceback mid-sweep
        executor = (
            make_executor(
                args.executor, jobs=args.jobs, queue_dir=args.queue_dir
            )
            if args.executor is not None
            else None
        )
        store = SweepStore(args.store) if args.store else None
    except (ValueError, TypeError, RuntimeError) as exc:
        raise _UserError(exc.args[0]) from exc
    cache = None if args.no_cache else _result_cache(args)
    engine = SweepEngine(
        spec,
        jobs=args.jobs,
        cache=cache,
        refresh=args.refresh,
        executor=executor,
    )
    outcome = engine.run()
    if store is not None:
        print(f"columnar store written to {store.write(outcome)}")
    aggregates = aggregate(outcome.runs, outcome.results)
    print(render_table(aggregates))
    variants = {(a.backend, a.variant) for a in aggregates}
    if len(variants) > 1:
        print()
        print(pairwise_table(aggregates))
    for path, render in ((args.json, render_json), (args.csv, render_csv)):
        if not path:
            continue
        text = (
            render(outcome.runs, outcome.results, aggregates)
            if render is render_json
            else render(aggregates)
        )
        if path == "-":
            print(text, end="")
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
    if args.stats:
        line = outcome.stats_line()
        if cache is not None:
            line += f", cache at {cache.root} ({cache.stats.summary()})"
        print(line)
    return 0


def _compare_results(args: argparse.Namespace, names):
    """One result per (scenario, backend) through the sweep engine —
    cached/parallel when asked, each scenario keeping its own seed
    unless ``--seed`` overrides all of them."""
    from repro.sweep import RunSpec, SweepEngine, SweepSpec

    cache = _result_cache(args) if args.from_cache else None
    if args.from_cache:
        missing, rows = [], []
        for name in names:
            scenario = _resolve(name, args)
            seed = args.seed if args.seed is not None else scenario.seed
            for backend in ("des", "fluid"):
                run = RunSpec(scenario, backend, seed)
                result = cache.get(run)
                if result is None:
                    missing.append(run.label())
                else:
                    rows.append(result)
        if not rows:
            raise _UserError(
                "--from-cache found no artifact for: "
                + ", ".join(missing)
                + f" (cache dir {cache.root}; run 'repro scenarios sweep' "
                "with matching --backend/--seed/--horizon/--warmup first)"
            )
        if missing:
            # a fluid-only (or des-only) sweep is a legitimate source:
            # tabulate what exists, but say what is absent
            print(
                f"note: {len(missing)} cell(s) not cached, omitted: "
                + ", ".join(missing),
                file=sys.stderr,
            )
        return rows
    # group by effective seed so each scenario keeps its registry default
    by_seed = {}
    for name in names:
        scenario = _resolve(name, args)
        seed = args.seed if args.seed is not None else scenario.seed
        by_seed.setdefault(seed, []).append(name)
    results = {}
    for seed, group in by_seed.items():
        spec = SweepSpec(
            scenarios=tuple(group),
            seeds=(seed,),
            backends=("des", "fluid"),
            overrides=_sweep_overrides(args),
        )
        outcome = SweepEngine(spec, jobs=args.jobs).run()
        for run, result in zip(outcome.runs, outcome.results):
            results[(run.name, run.backend)] = result
    return [
        results[(name, backend)]
        for name in names
        for backend in ("des", "fluid")
    ]


def _scenarios_compare(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    names = args.names or []
    if args.all or not names:
        # scale-tier scenarios are excluded: comparing them on both
        # packet-level backends is exactly the cost --all must not pay
        names = [s.name for s in list_scenarios(include_scale=False)]
    rows = _compare_results(args, names)
    width = max(len(r.scenario) for r in rows)
    print(
        f"{'scenario':<{width}}  {'backend':<8}{'Mbps total':>11}"
        f"{'worst Mbps':>12}{'latency ms':>12}{'drops':>8}"
        f"{'migr':>6}{'fail ev':>9}"
    )
    for r in rows:
        print(
            f"{r.scenario:<{width}}  {r.backend:<8}"
            f"{r.total_throughput_mbps:>11.2f}{r.min_flow_mbps:>12.2f}"
            f"{r.mean_latency_ms:>12.2f}{r.drops:>8d}"
            f"{r.migrations:>6d}{r.failure_events:>9d}"
        )
    return 0


def build_scenarios_parser() -> argparse.ArgumentParser:
    """The ``repro scenarios`` argument parser, construction only.

    Kept separate from execution so tooling (and the doc-snippet tests,
    which parse every ``repro ...`` command block in README/docs against
    the real parser) can validate invocations without running anything.
    """
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="Run declarative evaluation scenarios through the "
        "framework (see repro.scenarios).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the registered scenarios")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed "
                       "(default: the scenario's registered seed)")
        p.add_argument("--horizon", type=float, default=None,
                       help="override the measurement horizon, in "
                       "seconds of virtual time (default: the "
                       "scenario's registered horizon)")
        p.add_argument("--warmup", type=float, default=None,
                       help="override the telemetry warmup, in seconds "
                       "of virtual time before traffic starts "
                       "(default: the scenario's registered warmup)")
        p.add_argument("--objective", choices=_objective_choices(),
                       default=None,
                       help="override the scenario's Hecate objective "
                       "(default: the scenario's registered policy "
                       "objective; see 'repro objectives list')")

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("name", help="scenario name (see 'list')")
    run.add_argument("--backend", choices=_backend_choices(),
                     default=None,
                     help="override the scenario's backend "
                     "(default: the scenario's registered backend; "
                     "see 'repro backends list')")
    run.add_argument("--profile", nargs="?", const="-", default=None,
                     metavar="PATH",
                     help="profile the run under cProfile and print the "
                     "top functions by internal and cumulative time; "
                     "with PATH, also dump raw pstats data there for "
                     "python -m pstats / snakeviz (default: no "
                     "profiling; bare --profile prints the summary "
                     "only).  Profiler overhead inflates wall clock — "
                     "use it to find bottlenecks, not to measure them")
    common(run)

    compare = sub.add_parser(
        "compare", help="run scenarios on both backends, tabulate"
    )
    compare.add_argument("names", nargs="*", help="scenario names")
    compare.add_argument("--all", action="store_true",
                         help="compare every registered scenario "
                         "(scale tier excluded; name scale-* "
                         "scenarios explicitly)")
    compare.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes (default 1: in-process)")
    compare.add_argument("--from-cache", action="store_true",
                         help="serve results from the sweep cache instead "
                         "of running; errors on missing artifacts")
    compare.add_argument("--cache-dir", default=None,
                         help="sweep cache directory "
                         "(default .sweep-cache)")
    common(compare)

    sweep = sub.add_parser(
        "sweep",
        help="run a (scenario x seed x backend x policy) grid in "
        "parallel, with result caching and seed aggregation",
    )
    sweep.add_argument("names", nargs="*", help="scenario names")
    sweep.add_argument("--all", action="store_true",
                       help="sweep every registered scenario "
                       "(default when no names are given; scale tier "
                       "excluded either way — name scale-* scenarios "
                       "explicitly)")
    sweep.add_argument("--seeds", default="0",
                       help="seed axis: a list like '0,1,2' or an "
                       "inclusive range like '0-4' (default '0')")
    sweep.add_argument("--backend", action="append",
                       choices=_backend_choices(),
                       help="backend axis (repeatable; default: each "
                       "scenario's own registered backend; "
                       "see 'repro backends list')")
    sweep.add_argument("--policy", action="append", metavar="K=V[,K=V]",
                       help="policy-override variant, e.g. "
                       "'reoptimize_every=5.0' (units follow the "
                       "PolicySpec field: seconds for periods/"
                       "intervals, Mbps for thresholds; repeatable — "
                       "each use adds one grid axis value; default: "
                       "no policy axis)")
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes (default 1: in-process; "
                       "results are byte-identical at any --jobs)")
    sweep.add_argument("--executor", choices=("serial", "process",
                                              "work-queue"),
                       default=None,
                       help="how pending cells execute: 'serial' "
                       "in-process, 'process' via a local pool of "
                       "--jobs workers, 'work-queue' by draining a "
                       "shared --queue-dir alongside other "
                       "invocations (default: serial for --jobs 1, "
                       "process otherwise; results are byte-identical "
                       "across executors)")
    sweep.add_argument("--queue-dir", metavar="DIR", default=None,
                       help="shared work-queue directory for "
                       "--executor work-queue; start the same sweep "
                       "with the same DIR from N shells and they "
                       "divide the cells (default: none)")
    sweep.add_argument("--store", metavar="PATH", default=None,
                       help="also write every (run, result) row to one "
                       "columnar file: parquet when PATH ends in "
                       ".parquet and pyarrow is installed, columnar "
                       "JSON when it ends in .json (default: no "
                       "store; the per-cell cache is unaffected)")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache directory "
                       "(default .sweep-cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache "
                       "(default: cache on)")
    sweep.add_argument("--refresh", action="store_true",
                       help="re-execute every cell but still write the "
                       "cache back (default: serve cached cells)")
    sweep.add_argument("--stats", action="store_true",
                       help="print cache/executor statistics after the "
                       "table (default: off)")
    sweep.add_argument("--json", metavar="PATH",
                       help="write runs + aggregates as JSON "
                       "('-' for stdout; default: no JSON output)")
    sweep.add_argument("--csv", metavar="PATH",
                       help="write the aggregate table as CSV "
                       "('-' for stdout; default: no CSV output)")
    common(sweep)
    return parser


def _scenarios_main(argv) -> int:
    args = build_scenarios_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _scenarios_list()
        if args.command == "run":
            return _scenarios_run(args)
        if args.command == "sweep":
            return _scenarios_sweep(args)
        return _scenarios_compare(args)
    except _UserError as exc:
        # unknown scenario names and invalid spec overrides (e.g. a
        # negative --horizon); internal errors still traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


def _backends_list() -> int:
    from repro.backends import list_backends

    capabilities = list_backends()
    width = max(len(c.name) for c in capabilities)
    flags = (
        ("packet", "packet_level"),
        ("fluid", "fluid_model"),
        ("classes", "uses_flow_classes"),
        ("external", "external"),
        ("events", "reports_sim_events"),
        ("telem", "reports_telemetry"),
    )
    header = f"{'name':<{width}}  " + "".join(
        f"{label:>9}" for label, _ in flags
    )
    print(header)
    print("-" * len(header))
    for caps in capabilities:
        cells = "".join(
            f"{'yes' if getattr(caps, attr) else '-':>9}"
            for _, attr in flags
        )
        print(f"{caps.name:<{width}}  {cells}")
        print(f"{'':<{width}}    {caps.description}")
    return 0


def build_backends_parser() -> argparse.ArgumentParser:
    """The ``repro backends`` argument parser, construction only.

    Separate from execution for the same reason as
    :func:`build_scenarios_parser`: the doc-snippet tests validate
    documented command lines against the real parser.
    """
    parser = argparse.ArgumentParser(
        prog="repro backends",
        description="Inspect the execution-backend registry behind "
        "every --backend axis (see repro.backends and "
        "docs/BACKENDS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="show the registered backends and their capabilities"
    )
    return parser


def _backends_main(argv) -> int:
    build_backends_parser().parse_args(argv)
    return _backends_list()


def _service_list() -> int:
    from repro.scenarios import list_workloads

    workloads = list_workloads()
    width = max(len(w.name) for w in workloads)
    header = (
        f"{'name':<{width}}  {'topology':<18}{'rate/s':>7}{'profile':>9}"
        f"{'holding':>13}{'duration':>9}"
    )
    print(header)
    print("-" * len(header))
    for w in workloads:
        print(
            f"{w.name:<{width}}  {w.topology.kind:<18}"
            f"{w.churn.rate:>7g}{w.churn.rate_profile:>9}"
            f"{w.churn.holding:>13}{w.duration:>8g}s"
        )
        print(f"{'':<{width}}    {w.description}")
    return 0


def _service_run(args: argparse.Namespace) -> int:
    import json

    from repro.framework.service_mode import run_service
    from repro.scenarios import get_workload

    try:
        workload = get_workload(args.name)
        result = run_service(
            workload,
            rate=args.rate,
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
            objective=args.objective,
        )
    except (KeyError, ValueError) as exc:
        raise _UserError(exc.args[0]) from exc
    if args.json:
        text = json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            print(text, end="")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text)
    if args.json != "-":
        print(result.summary())
    if not result.reconciles():
        print(
            "error: admission counters do not reconcile "
            "(admitted + rejected + deferred_pending != offered)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_service_parser() -> argparse.ArgumentParser:
    """The ``repro service`` argument parser, construction only.

    Separate from execution for the same reason as
    :func:`build_scenarios_parser`: the doc-snippet tests validate
    documented command lines against the real parser.
    """
    parser = argparse.ArgumentParser(
        prog="repro service",
        description="Open-loop service mode: sustained flow churn with "
        "admission control and steady-state SLO metrics "
        "(see repro.framework.service_mode).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the registered service workloads")

    run = sub.add_parser("run", help="run one service workload")
    run.add_argument("name", help="workload name (see 'list')")
    run.add_argument("--rate", type=float, default=None,
                     help="override the flow arrival rate, in flows per "
                     "virtual second (default: the workload's "
                     "registered rate)")
    run.add_argument("--duration", type=float, default=None,
                     help="override the run duration, in virtual "
                     "seconds (default: the workload's registered "
                     "duration)")
    run.add_argument("--warmup", type=float, default=None,
                     help="override the SLO warmup window, in virtual "
                     "seconds; samples arriving earlier are excluded "
                     "from percentiles, never from counters "
                     "(default: the workload's registered warmup)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the workload's seed "
                     "(default: the workload's registered seed)")
    run.add_argument("--objective", choices=_objective_choices(),
                     default=None,
                     help="override the workload's Hecate objective "
                     "(default: the workload's registered policy "
                     "objective; see 'repro objectives list')")
    run.add_argument("--json", metavar="PATH",
                     help="write the result as JSON ('-' for stdout, "
                     "replacing the summary; default: summary only)")
    return parser


def _service_main(argv) -> int:
    args = build_service_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _service_list()
        return _service_run(args)
    except _UserError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


def build_objectives_parser() -> argparse.ArgumentParser:
    """The ``repro objectives`` argument parser, construction only.

    Separate from execution for the same reason as
    :func:`build_scenarios_parser`: the doc-snippet tests validate
    documented command lines against the real parser.
    """
    parser = argparse.ArgumentParser(
        prog="repro objectives",
        description="The pluggable Hecate objective registry behind "
        "every --objective flag and 'policy=objective=...' sweep axis "
        "(see repro.hecate.objectives and docs/QOE.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the registered objectives")
    return parser


def _objectives_list() -> int:
    from repro.hecate.objectives import list_objectives

    specs = list_objectives()
    width = max(len(s.name) for s in specs)
    header = f"{'name':<{width}}  {'app-aware':<10}description"
    print(header)
    print("-" * len(header))
    for spec in specs:
        aware = "yes" if spec.app_aware else "-"
        print(f"{spec.name:<{width}}  {aware:<10}{spec.description}")
    return 0


def _objectives_main(argv) -> int:
    build_objectives_parser().parse_args(argv)
    return _objectives_list()


def build_lint_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser, construction only.

    Separate from execution for the same reason as
    :func:`build_scenarios_parser`: the doc-snippet tests validate
    documented command lines against the real parser.
    """
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically check the determinism & hot-path "
        "invariants (rules RL001-RL008; see repro.analysis and "
        "docs/DETERMINISM.md). Exits 1 on any non-baselined finding.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                        "(default: src)")
    parser.add_argument("--json", metavar="PATH",
                        help="write findings as a versioned JSON "
                        "document ('-' for stdout, replacing the text "
                        "report; default: text report only)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file of grandfathered findings; "
                        "matching findings are reported but do not fail "
                        "the run (default: no baseline)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write every current finding to --baseline "
                        "and exit 0 (default: off)")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run, e.g. "
                        "'RL001,RL004' (default: every registered rule)")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="directory report paths are made relative "
                        "to — baselines stay stable across checkouts "
                        "(default: the working directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog (id, severity, "
                        "scope, description) and exit")
    return parser


def _lint_rules(args: argparse.Namespace):
    from repro.analysis import all_rules, get_rule

    if not args.select:
        return all_rules()
    try:
        return tuple(
            get_rule(rule_id.strip())
            for rule_id in args.select.split(",")
            if rule_id.strip()
        )
    except KeyError as exc:
        raise _UserError(exc.args[0]) from exc


def _lint_list_rules() -> int:
    from repro.analysis import all_rules

    for rule in all_rules():
        scope = ", ".join(rule.include) if rule.include else "all files"
        if rule.exclude:
            scope += f"; except {', '.join(rule.exclude)}"
        print(f"{rule.id}  {rule.name}  [{rule.severity}]  ({scope})")
        print(f"       {rule.description}")
    return 0


def _lint_main(argv) -> int:
    args = build_lint_parser().parse_args(argv)
    try:
        if args.list_rules:
            return _lint_list_rules()
        from repro.analysis import (
            Analyzer,
            Baseline,
            render_json,
            render_text,
        )

        rules = _lint_rules(args)
        baseline = None
        if args.baseline and not args.write_baseline:
            try:
                baseline = Baseline.load(args.baseline)
            except FileNotFoundError:
                raise _UserError(
                    f"baseline file {args.baseline!r} does not exist "
                    "(create it with --write-baseline)"
                ) from None
            except (ValueError, KeyError) as exc:
                raise _UserError(
                    f"baseline file {args.baseline!r} is not a valid "
                    f"baseline: {exc}"
                ) from exc
        analyzer = Analyzer(rules=rules, baseline=baseline, root=args.root)
        findings = analyzer.lint_paths(args.paths or ["src"])
        if args.write_baseline:
            if not args.baseline:
                raise _UserError(
                    "--write-baseline needs --baseline PATH to write to"
                )
            Baseline.dump(findings, args.baseline)
            print(
                f"baseline written to {args.baseline} "
                f"({len(findings)} entrie(s))"
            )
            return 0
        if args.json:
            text = render_json(findings)
            if args.json == "-":
                print(text, end="")
            else:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(text)
        if args.json != "-":
            print(render_text(findings), end="")
        active = [f for f in findings if not f.baselined]
        return 1 if active else 0
    except _UserError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenarios":
        return _scenarios_main(argv[1:])
    if argv and argv[0] == "backends":
        return _backends_main(argv[1:])
    if argv and argv[0] == "service":
        return _service_main(argv[1:])
    if argv and argv[0] == "objectives":
        return _objectives_main(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Framework for Integrating ML "
        "Methods for Path-Aware Source Routing'.",
        epilog="'repro scenarios --help' documents the scenario suite; "
        "'repro backends --help' the execution-backend registry; "
        "'repro service --help' the open-loop service mode; "
        "'repro objectives --help' the Hecate objective registry; "
        "'repro lint --help' the determinism invariant checker.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list'/'all', 'scenarios', "
        "'backends', 'service', 'objectives', or 'lint'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (description, _) in EXPERIMENTS.items():
            print(f"{key:<{width}}  {description}")
        return 0
    if args.experiment == "all":
        for key, (_, runner) in EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n{key}\n{'=' * 72}")
            print(runner())
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from: {', '.join(EXPERIMENTS)} (or 'list'/'all')",
            file=sys.stderr,
        )
        return 2
    print(EXPERIMENTS[args.experiment][1]())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
