"""Command-line entry point: paper figures and the scenario suite.

Figure replays (the original interface)::

    repro list          # available experiments
    repro fig11         # run one, print its terminal report
    repro all           # run everything

Scenario suite (see :mod:`repro.scenarios`)::

    repro scenarios list
    repro scenarios run ring-link-flap [--backend des|fluid]
                                       [--seed N] [--horizon S] [--warmup S]
    repro scenarios compare line-baseline ring-uniform   # or --all

``repro`` is installed as a console script by setup.py; ``python -m
repro`` is equivalent.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> str:
    from repro.experiments import fig1_polka_example as m

    return m.summary(m.run())


def _fig2() -> str:
    from repro.experiments import fig2_minmax_lp as m

    return m.summary(m.run())


def _fig4() -> str:
    from repro.experiments import fig4_closed_loop as m

    return m.summary(m.run())


def _fig5() -> str:
    from repro.experiments import fig5_dataset as m

    return m.summary(m.run())


def _fig6() -> str:
    from repro.experiments import fig6_regressor_tournament as m

    return m.summary(m.run())


def _fig7() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig7(), "Fig. 7")


def _fig8() -> str:
    from repro.experiments import fig7_fig8_models as m

    return m.summary(m.run_fig8(), "Fig. 8")


def _fig9() -> str:
    from repro.experiments import fig9_topology as m

    return m.summary(m.run())


def _fig11() -> str:
    from repro.experiments import fig11_latency_migration as m

    return m.summary(m.run())


def _fig12() -> str:
    from repro.experiments import fig12_flow_aggregation as m

    return m.summary(m.run())


EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "fig1": ("PolKA CRT worked example (exact)", _fig1),
    "fig2": ("Eq. (1)-(3) TE optimizations", _fig2),
    "fig4": ("framework sequence replay (Figs. 3-4)", _fig4),
    "fig5": ("WiFi/LTE dataset (Fig. 5b)", _fig5),
    "fig6": ("18-regressor tournament (~1 min)", _fig6),
    "fig7": ("best model observed-vs-predicted", _fig7),
    "fig8": ("worst model observed-vs-predicted", _fig8),
    "fig9": ("testbed + Fig. 10 config inventory", _fig9),
    "fig11": ("agile latency migration (~2 min sim)", _fig11),
    "fig12": ("multi-path flow aggregation (~1 min sim)", _fig12),
}


def _scenario_with_overrides(name: str, args: argparse.Namespace):
    from repro.scenarios import get_scenario

    scenario = get_scenario(name)
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    return scenario.with_overrides(**overrides) if overrides else scenario


def _scenarios_list() -> int:
    from repro.scenarios import list_scenarios

    scenarios = list_scenarios()
    width = max(len(s.name) for s in scenarios)
    header = (
        f"{'name':<{width}}  {'topology':<17}{'traffic':<14}"
        f"{'failures':<10}{'backend':<8}"
    )
    print(header)
    print("-" * len(header))
    for s in scenarios:
        print(
            f"{s.name:<{width}}  {s.topology.kind:<17}"
            f"{s.traffic.pattern:<14}{s.failures.kind:<10}{s.backend:<8}"
        )
        print(f"{'':<{width}}    {s.description}")
    return 0


class _UserError(Exception):
    """A bad name or override from the command line (not an internal bug)."""


def _resolve(name: str, args: argparse.Namespace):
    """Scenario lookup + overrides, with user mistakes wrapped so the
    CLI can report them cleanly while internal errors still traceback."""
    try:
        return _scenario_with_overrides(name, args)
    except (KeyError, ValueError) as exc:
        raise _UserError(exc.args[0]) from exc


def _scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner

    scenario = _resolve(args.name, args)
    runner = ScenarioRunner(scenario, backend=args.backend, seed=args.seed)
    print(runner.run().summary())
    return 0


def _scenarios_compare(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner, list_scenarios

    names = args.names or []
    if args.all or not names:
        names = [s.name for s in list_scenarios()]
    rows = []
    for name in names:
        scenario = _resolve(name, args)
        for backend in ("des", "fluid"):
            result = ScenarioRunner(
                scenario, backend=backend, seed=args.seed
            ).run()
            rows.append(result)
    width = max(len(r.scenario) for r in rows)
    print(
        f"{'scenario':<{width}}  {'backend':<8}{'Mbps total':>11}"
        f"{'worst Mbps':>12}{'latency ms':>12}{'drops':>8}"
        f"{'migr':>6}{'fail ev':>9}"
    )
    for r in rows:
        print(
            f"{r.scenario:<{width}}  {r.backend:<8}"
            f"{r.total_throughput_mbps:>11.2f}{r.min_flow_mbps:>12.2f}"
            f"{r.mean_latency_ms:>12.2f}{r.drops:>8d}"
            f"{r.migrations:>6d}{r.failure_events:>9d}"
        )
    return 0


def _scenarios_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="Run declarative evaluation scenarios through the "
        "framework (see repro.scenarios).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the registered scenarios")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
        p.add_argument("--horizon", type=float, default=None,
                       help="override the measurement horizon (seconds)")
        p.add_argument("--warmup", type=float, default=None,
                       help="override the telemetry warmup (seconds)")

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("name", help="scenario name (see 'list')")
    run.add_argument("--backend", choices=("des", "fluid"), default=None,
                     help="override the scenario's backend")
    common(run)

    compare = sub.add_parser(
        "compare", help="run scenarios on both backends, tabulate"
    )
    compare.add_argument("names", nargs="*", help="scenario names")
    compare.add_argument("--all", action="store_true",
                         help="compare every registered scenario")
    common(compare)

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _scenarios_list()
        if args.command == "run":
            return _scenarios_run(args)
        return _scenarios_compare(args)
    except _UserError as exc:
        # unknown scenario names and invalid spec overrides (e.g. a
        # negative --horizon); internal errors still traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenarios":
        return _scenarios_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Framework for Integrating ML "
        "Methods for Path-Aware Source Routing'.",
        epilog="'repro scenarios --help' documents the scenario suite.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'list'/'all', or 'scenarios'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key, (description, _) in EXPERIMENTS.items():
            print(f"{key:<{width}}  {description}")
        return 0
    if args.experiment == "all":
        for key, (_, runner) in EXPERIMENTS.items():
            print(f"\n{'=' * 72}\n{key}\n{'=' * 72}")
            print(runner())
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from: {', '.join(EXPERIMENTS)} (or 'list'/'all')",
            file=sys.stderr,
        )
        return 2
    print(EXPERIMENTS[args.experiment][1]())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
